/**
 * @file
 * Regenerates Table I (comparison of datacenter cooling technologies)
 * and Table II (dielectric fluid properties) from the thermal catalogs,
 * plus the facility-power consequences for a 700 W server under each
 * technology.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "power/facility.hh"
#include "thermal/cooling.hh"
#include "thermal/fluid.hh"
#include "thermal/liquid_loops.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(std::cout,
                       "Table I: datacenter cooling technologies");
    util::TableWriter table1({"Technology", "Avg PUE", "Peak PUE",
                              "Fan overhead", "Max server cooling"});
    for (const auto &spec : thermal::coolingTechCatalog()) {
        table1.addRow({spec.name, util::fmt(spec.avgPue, 2),
                       util::fmt(spec.peakPue, 2),
                       util::fmt(spec.fanOverheadFraction * 100.0, 0) + "%",
                       util::fmt(spec.maxServerCooling / 1000.0, 1) +
                           " kW"});
    }
    table1.print(std::cout);

    util::printHeading(std::cout, "Table II: dielectric fluid properties");
    util::TableWriter table2({"Property", thermal::fc3284().name,
                              thermal::hfe7000().name});
    const auto &fc = thermal::fc3284();
    const auto &hfe = thermal::hfe7000();
    table2.addRow({"Boiling point [C]", util::fmt(fc.boilingPoint, 0),
                   util::fmt(hfe.boilingPoint, 0)});
    table2.addRow({"Dielectric constant", util::fmt(fc.dielectricConstant, 2),
                   util::fmt(hfe.dielectricConstant, 1)});
    table2.addRow({"Latent heat [J/g]", util::fmt(fc.latentHeatJPerG, 0),
                   util::fmt(hfe.latentHeatJPerG, 0)});
    table2.addRow({"Useful life [years]", ">" + util::fmt(fc.usefulLife, 0),
                   ">" + util::fmt(hfe.usefulLife, 0)});
    table2.print(std::cout);

    util::printHeading(
        std::cout, "Derived: facility power for one 700 W server (peak)");
    util::TableWriter table3(
        {"Technology", "Facility power [W]", "Overhead vs 2PIC [W]"});
    const power::Facility best(thermal::CoolingTech::Immersion2P);
    for (const auto &spec : thermal::coolingTechCatalog()) {
        const power::Facility facility(spec.tech);
        table3.addRow(
            {spec.name, util::fmt(facility.facilityPowerPeak(700.0), 0),
             util::fmt(facility.facilityPowerPeak(700.0) -
                           best.facilityPowerPeak(700.0),
                       0)});
    }
    table3.print(std::cout);

    util::printHeading(
        std::cout,
        "Derived: junction temperature of a 204 W socket per technology");
    std::vector<std::unique_ptr<thermal::CoolingSystem>> systems;
    systems.push_back(std::make_unique<thermal::AirCooling>(
        thermal::CoolingTech::Chiller, 22.0, 0.22));
    systems.push_back(std::make_unique<thermal::AirCooling>(
        thermal::CoolingTech::WaterSide, 30.0, 0.22));
    systems.push_back(std::make_unique<thermal::AirCooling>(
        thermal::CoolingTech::DirectEvaporative, 35.0, 0.22));
    systems.push_back(std::make_unique<thermal::ColdPlateCooling>());
    systems.push_back(
        std::make_unique<thermal::SinglePhaseImmersionCooling>());
    systems.push_back(std::make_unique<thermal::TwoPhaseImmersionCooling>(
        thermal::fc3284(),
        thermal::BoilingInterface{
            thermal::BoilingInterface::Coating::DirectIhs}));

    util::TableWriter tj({"System", "Reference [C]", "Rth [C/W]",
                          "Tj at 204 W [C]"});
    for (const auto &system : systems) {
        tj.addRow({system->name(),
                   util::fmt(system->referenceTemperature(204.0), 1),
                   util::fmt(system->thermalResistance(), 2),
                   util::fmt(system->junctionTemperature(204.0), 1)});
    }
    tj.print(std::cout);

    std::cout << "\nPaper check: 2PIC average PUE 1.02 / peak 1.03, no fan"
                 " overhead,\n>4 kW per-server cooling; chillers 1.70/2.00"
                 " with 5% fans (Table I).\n";
    return 0;
}
