/**
 * @file
 * Capacity-crisis sweep: crisis-recovery latency vs overclocking
 * headroom. A steady 10-VM fleet loses 20% of its servers at once
 * (fault::runCrisisExperiment); Baseline must scale replacement VMs out
 * at 60 s each, while OC-E/OC-A overclock the survivors. Swept over
 * policy x maximum frequency, the table shows where overclocking
 * headroom substitutes for spare capacity: with enough headroom OC-A
 * keeps the crisis-window P99 inside the SLA that Baseline misses.
 */

#include <iostream>
#include <memory>

#include "exp/sweep.hh"
#include "fault/experiment.hh"
#include "obs/obs.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace imsim;

int
main(int argc, char **argv)
{
    // Flags: --seed N (default 42), --sla SECONDS (crisis P99 bound),
    // --smoke (small fleet, short horizon; CI), --jobs N, --report FILE,
    // --trace FILE, --telemetry FILE, --watchdog FILE (incident
    // timelines), --blackbox FILE (flight-recorder dump; also armed as
    // the post-mortem sink), --progress [FILE], --profile [FILE].
    const util::Cli cli(argc, argv);
    obs::maybeEnableProfiler(cli);
    const auto progress = exp::progressFromCli(cli, "fault_crisis");

    fault::CrisisParams params;
    params.seed = static_cast<std::uint64_t>(cli.getInt("--seed", 42));
    if (cli.has("--smoke")) {
        // Same operating points (healthy ~88% utilization, crash ->
        // base-clock overload) on a smaller fleet with 4x longer
        // service times: a quarter of the events, so the smoke fits in
        // a ctest budget. Latencies (and the SLA) scale with the
        // service time.
        params.fleetSize = 5;
        params.serviceMean = 1.04e-2;
        params.qps = 1687.5;
        params.warmup = 60.0;
        params.crisisStart = 180.0;
        params.repairAfter = 180.0;
        params.horizon = 420.0;
        params.slaP99 = 0.400;
    }
    params.slaP99 = cli.getDouble("--sla", params.slaP99);

    util::printHeading(std::cout,
                       "Capacity crisis: 20% of the fleet crashes at "
                       "once");
    std::cout << "Fleet of " << params.fleetSize
              << " VMs at steady load; at t=" << params.crisisStart
              << " s, " << "20% crash (repair after " << params.repairAfter
              << " s).\nBaseline replaces capacity via 60 s scale-outs; "
                 "OC-E/OC-A overclock the\nsurvivors. Crisis-window P99 "
                 "SLA: "
              << util::fmt(params.slaP99 * 1e3, 0) << " ms.\n\n";

    const exp::SweepRunner runner({cli.jobs(), params.seed,
                                   progress.get()});
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, params.seed, runner.jobs());

    struct Point
    {
        autoscale::Policy policy;
        GHz maxFreq;
    };
    const std::vector<autoscale::Policy> policies{
        autoscale::Policy::Baseline, autoscale::Policy::OcE,
        autoscale::Policy::OcA};
    const std::vector<GHz> headrooms{3.55, 3.8, 4.1};
    std::vector<Point> points;
    for (const auto policy : policies)
        for (const auto freq : headrooms)
            points.push_back(Point{policy, freq});

    const bool capture_obs =
        obs::traceRequested(cli) || obs::telemetryRequested(cli);
    std::vector<autoscale::ObsCapture> captures(
        capture_obs ? points.size() : 0);

    // One flight recorder per sweep point, ticked at the watchdog
    // cadence (last 3600 polls at full resolution, then 10x and 60x
    // bins). All are armed, and the --blackbox file doubles as the
    // post-mortem sink: a watchdog page, invariant violation, or any
    // fatal during the sweep dumps what every recorder saw so far; the
    // explicit write below then persists the complete run.
    std::vector<std::unique_ptr<obs::FlightRecorder>> recorders;
    if (obs::blackboxRequested(cli)) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            recorders.push_back(std::make_unique<obs::FlightRecorder>(
                obs::FlightRecorder::Config::forCadence(
                    params.watchdogPeriod)));
            recorders.back()->armPostMortem(
                autoscale::policyName(points[i].policy) + "@" +
                util::fmt(points[i].maxFreq, 2));
        }
        obs::FlightRecorder::setPostMortemSink(cli.blackboxFile(),
                                               manifest.toJsonObject());
    }

    const auto outcomes = runner.map<fault::CrisisOutcome>(
        points.size(), [&](std::size_t i, util::Rng &) {
            fault::CrisisParams point_params = params;
            point_params.maxFrequency = points[i].maxFreq;
            if (capture_obs)
                point_params.obs = &captures[i];
            if (!recorders.empty())
                point_params.blackbox = recorders[i].get();
            return fault::runCrisisExperiment(points[i].policy,
                                              point_params);
        });
    exp::RunTiming sweep_timing;
    if (progress)
        sweep_timing = progress->runTiming();

    util::TableWriter table({"Policy", "Max freq", "Healthy P99",
                             "Crisis P99", "SLA", "Detect", "Recovery",
                             "Scale-outs", "Avg freq", "Violations"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &out = outcomes[i];
        table.addRow(
            {autoscale::policyName(out.policy),
             util::fmt(points[i].maxFreq, 2) + " GHz",
             util::fmt(out.healthyP99 * 1e3, 1) + " ms",
             util::fmt(out.crisisP99 * 1e3, 1) + " ms",
             out.slaMet ? "met" : "MISSED",
             out.detectSeconds >= 0.0
                 ? util::fmt(out.detectSeconds, 0) + " s"
                 : "—",
             out.recoverySeconds >= 0.0
                 ? util::fmt(out.recoverySeconds, 0) + " s"
                 : "never",
             util::fmt(out.scaleOuts, 0),
             util::fmt(out.avgFrequency, 2) + " GHz",
             util::fmt(out.invariantViolations, 0)});
    }
    table.print(std::cout);
    std::cout << "Reading: Baseline's crisis P99 is set by the 60 s VM "
                 "replacement latency and\ndoes not improve with "
                 "headroom; the overclocking policies convert headroom\n"
                 "into immediate capacity, meeting at full headroom the "
                 "SLA Baseline misses.\nDetect is the SLO watchdog's "
                 "first page after the crash (trailing-window P99\nvs "
                 "SLA, 1 s polls); \"—\" means the survivors absorbed "
                 "the loss before the\nwatchdog ever saw a breach — "
                 "headroom standing in for spare capacity.\n";

    exp::RunReport report("fault_crisis");
    report.setMeta(manifest.entries());
    if (progress)
        report.setTiming(sweep_timing);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &out = outcomes[i];
        exp::RunRecord record;
        record.params = {
            {"policy", autoscale::policyName(out.policy)},
            {"max_freq_ghz", util::fmt(points[i].maxFreq, 2)}};
        record.metrics.set("healthy_p99_s", out.healthyP99);
        record.metrics.set("crisis_p99_s", out.crisisP99);
        record.metrics.set("sla_met", out.slaMet ? 1.0 : 0.0);
        record.metrics.set("recovery_s", out.recoverySeconds);
        record.metrics.set("scale_outs",
                           static_cast<double>(out.scaleOuts));
        record.metrics.set("avg_freq_ghz", out.avgFrequency);
        record.metrics.set("servers_crashed",
                           static_cast<double>(out.serversCrashed));
        record.metrics.set("faults_injected",
                           static_cast<double>(out.faults.size()));
        record.metrics.set(
            "invariant_violations",
            static_cast<double>(out.invariantViolations));
        record.metrics.set("brownouts",
                           static_cast<double>(out.brownouts));
        record.metrics.set("detect_s", out.detectSeconds);
        record.metrics.set("alerts_raised",
                           static_cast<double>(out.alertsRaised));
        record.metrics.set(
            "incidents",
            static_cast<double>(out.incidents.incidents().size()));
        report.add(std::move(record));
    }
    exp::maybeWriteReport(cli, report, std::cout);

    if (capture_obs) {
        obs::EventTracer merged_trace;
        obs::TelemetryMerger telemetry(captures.size());
        for (std::size_t i = 0; i < captures.size(); ++i) {
            const std::string label =
                autoscale::policyName(points[i].policy) + "@" +
                util::fmt(points[i].maxFreq, 2);
            merged_trace.nameTrack(static_cast<std::uint32_t>(i), label);
            merged_trace.append(captures[i].tracer,
                                static_cast<std::uint32_t>(i));
            telemetry.add(i, label, captures[i].telemetry);
        }
        obs::maybeWriteTrace(cli, merged_trace, manifest, std::cout);
        obs::maybeWriteTelemetry(cli, telemetry, manifest, std::cout);
    }
    if (obs::incidentsRequested(cli)) {
        std::vector<std::pair<std::string, const obs::IncidentLog *>>
            incident_points;
        for (std::size_t i = 0; i < points.size(); ++i) {
            incident_points.emplace_back(
                autoscale::policyName(points[i].policy) + "@" +
                    util::fmt(points[i].maxFreq, 2),
                &outcomes[i].incidents);
        }
        obs::maybeWriteIncidents(cli, incident_points, manifest,
                                 std::cout);
    }
    if (!recorders.empty()) {
        std::vector<std::pair<std::string, const obs::FlightRecorder *>>
            blackbox_points;
        for (std::size_t i = 0; i < points.size(); ++i) {
            blackbox_points.emplace_back(
                autoscale::policyName(points[i].policy) + "@" +
                    util::fmt(points[i].maxFreq, 2),
                recorders[i].get());
        }
        obs::maybeWriteBlackbox(cli, blackbox_points, manifest,
                                std::cout);
        obs::FlightRecorder::clearPostMortemSink();
    }
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
