/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: the DES
 * event loop, Eq. 1 evaluation, the lifetime model, the coupled socket
 * power solve, the hypervisor scheduler step, and the queueing cluster.
 */

#include <benchmark/benchmark.h>

#include "hw/counters.hh"
#include "power/socket_power.hh"
#include "reliability/lifetime.hh"
#include "sim/simulation.hh"
#include "thermal/cooling.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "vm/hypervisor.hh"
#include "workload/app.hh"
#include "workload/queueing.hh"

using namespace imsim;

namespace {

void
BM_SimulationEventLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationEventLoop)->Arg(1000)->Arg(10000);

void
BM_Eq1Prediction(benchmark::State &state)
{
    double util = 0.42;
    for (auto _ : state) {
        util = hw::predictedUtilization(util, 0.87, 3.4, 4.1);
        util = hw::predictedUtilization(util, 0.87, 4.1, 3.4);
        benchmark::DoNotOptimize(util);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Eq1Prediction);

void
BM_LifetimeEvaluation(benchmark::State &state)
{
    const reliability::LifetimeModel model;
    reliability::StressCondition cond;
    cond.voltage = 0.98;
    cond.tjMax = 74.0;
    cond.tMin = 50.0;
    cond.freqRatio = 1.23;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.lifetime(cond));
        cond.tjMax += 1e-9; // Defeat caching.
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LifetimeEvaluation);

void
BM_SocketPowerSolve(benchmark::State &state)
{
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    const thermal::TwoPhaseImmersionCooling cooling(thermal::fc3284());
    power::OperatingPoint op{2.6, 0.90, 1.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(socket.solve(op, cooling).total);
        op.frequency += 1e-9;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SocketPowerSolve);

void
BM_TurboEffectiveFrequency(benchmark::State &state)
{
    const auto governor = hw::TurboGovernor::skylake8180();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    const thermal::TwoPhaseImmersionCooling cooling(thermal::fc3284());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            governor.effectiveFrequency(socket, cooling, 28));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TurboEffectiveFrequency);

void
BM_HypervisorStep(benchmark::State &state)
{
    vm::HypervisorSim sim(16, {3.4, 2.4, 2.4}, util::Rng(1));
    for (int i = 0; i < 4; ++i)
        sim.addLatencyVm(workload::app("SQL"), 500.0);
    sim.addBatchVm(workload::app("BI"));
    for (auto _ : state)
        sim.run(0.1); // 100 scheduler steps.
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_HypervisorStep);

void
BM_QueueingClusterSecond(benchmark::State &state)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(2), params);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(2000.0);
    Seconds horizon = 0.0;
    for (auto _ : state) {
        horizon += 1.0;
        sim.runUntil(horizon); // ~2000 requests/iteration.
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_QueueingClusterSecond);

void
BM_PercentileEstimator(benchmark::State &state)
{
    util::Rng rng(3);
    for (auto _ : state) {
        util::PercentileEstimator est;
        for (int i = 0; i < state.range(0); ++i)
            est.add(rng.uniform());
        benchmark::DoNotOptimize(est.p95());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PercentileEstimator)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
