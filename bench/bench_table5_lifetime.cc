/**
 * @file
 * Regenerates Table IV (failure-mode dependencies) and Table V
 * (projected lifetimes for air / FC-3284 / HFE-7000 at nominal and
 * overclocked operating points), plus the DESIGN.md ablation: the same
 * projections with the thermal-cycling mechanism removed, showing why
 * immersion's narrow temperature band matters.
 */

#include <iostream>

#include "reliability/lifetime.hh"
#include "reliability/mechanisms.hh"
#include "util/table.hh"

using namespace imsim;

namespace {

std::string
formatYears(Years years)
{
    if (years > 10.0)
        return "> 10 years";
    if (years < 1.0)
        return "< 1 year";
    return util::fmt(years, 1) + " years";
}

} // namespace

int
main()
{
    util::printHeading(std::cout, "Table IV: failure-mode dependencies");
    util::TableWriter deps({"Failure mode", "T", "dT", "V"});
    deps.addRow({"Gate oxide breakdown", "yes", "no", "yes"});
    deps.addRow({"Electro-migration", "yes", "no", "no (J)"});
    deps.addRow({"Thermal cycling", "no", "yes", "no"});
    deps.print(std::cout);

    util::printHeading(std::cout, "Table V: projected processor lifetime");
    const reliability::LifetimeModel model;
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    util::TableWriter table({"Cooling", "OC", "Voltage", "Tj max", "DTj",
                             "Lifetime", "(model years)"});
    for (std::size_t i = 0; i < count; ++i) {
        const auto &sc = scenarios[i];
        const Years life = model.lifetime(sc.condition);
        table.addRow(
            {sc.cooling, sc.overclocked ? "yes" : "no",
             util::fmt(sc.condition.voltage, 2) + " V",
             util::fmt(sc.condition.tjMax, 0) + " C",
             util::fmt(sc.condition.tMin, 0) + "-" +
                 util::fmt(sc.condition.tjMax, 0) + " C",
             formatYears(life), util::fmt(life, 2)});
    }
    table.print(std::cout);
    std::cout << "Paper: 5 y / <1 y / >10 y / ~4 y / >10 y / 5 y.\n";

    util::printHeading(std::cout,
                       "Per-mechanism failure-rate breakdown [1/years]");
    util::TableWriter rates(
        {"Cooling", "OC", "Gate oxide", "Electromigration",
         "Thermal cycling", "Total"});
    for (std::size_t i = 0; i < count; ++i) {
        const auto &sc = scenarios[i];
        const auto breakdown = model.failureRate(sc.condition);
        rates.addRow({sc.cooling, sc.overclocked ? "yes" : "no",
                      util::fmt(breakdown.gateOxide, 4),
                      util::fmt(breakdown.electromigration, 4),
                      util::fmt(breakdown.thermalCycling, 4),
                      util::fmt(breakdown.total, 4)});
    }
    rates.print(std::cout);

    util::printHeading(
        std::cout,
        "Ablation: lifetimes with the thermal-cycling term removed");
    util::TableWriter ablation({"Cooling", "OC", "Full model",
                                "No-cycling model", "Delta"});
    for (std::size_t i = 0; i < count; ++i) {
        const auto &sc = scenarios[i];
        const auto breakdown = model.failureRate(sc.condition);
        const Years full = 1.0 / breakdown.total;
        const Years no_tc =
            1.0 / (breakdown.gateOxide + breakdown.electromigration);
        ablation.addRow({sc.cooling, sc.overclocked ? "yes" : "no",
                         util::fmt(full, 2), util::fmt(no_tc, 2),
                         util::fmtPercent(no_tc / full - 1.0)});
    }
    ablation.print(std::cout);
    std::cout << "Takeaway: removing cycling barely changes immersion rows"
                 " (narrow dT band)\nbut extends the air rows noticeably —"
                 " immersion's stable temperatures are a\nreliability"
                 " feature in their own right.\n";

    util::printHeading(std::cout,
                       "Extension: lifetime credit at moderate utilization");
    util::TableWriter credit(
        {"Duty cycle", "HFE-7000 OC wear/year", "Years to budget"});
    for (double duty : {1.0, 0.8, 0.6, 0.4}) {
        reliability::StressCondition cond = scenarios[5].condition;
        cond.dutyCycle = duty;
        const double wear = model.wearFraction(cond, 1.0);
        credit.addRow({util::fmt(duty * 100.0, 0) + "%",
                       util::fmt(wear, 4), util::fmt(1.0 / wear, 1)});
    }
    credit.print(std::cout);
    return 0;
}
