/**
 * @file
 * Regenerates the Fig. 7 capacity-crisis scenario: exponential demand
 * growth against delayed supply steps, with and without the overclocked
 * packing headroom bridging the gap.
 */

#include <iostream>

#include "cluster/capacity.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(
        std::cout, "Fig. 7: capacity crisis (delayed supply vs demand)");
    std::cout << "24 periods (weeks), 5% demand growth, 1500-VM supply"
                 " steps every 3 weeks\ndelayed by 5 weeks; overclocking"
                 " adds +20% packing headroom (Sec. VI-C).\n\n";

    std::vector<double> demand;
    std::vector<double> supply;
    cluster::CapacityPlanner::makeCrisisScenario(
        24, 10000.0, 0.05, 1500.0, 3, 5, demand, supply);
    const cluster::CapacityPlanner planner(0.20);
    const auto points = planner.evaluate(demand, supply);

    util::TableWriter table({"Week", "Demand", "Supply (nominal)",
                             "Denied (nominal)", "Denied (overclock)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        table.addRow({util::fmt(i, 0), util::fmt(p.demandVms, 0),
                      util::fmt(p.supplyVms, 0),
                      util::fmt(p.deniedNominal, 0),
                      util::fmt(p.deniedOverclock, 0)});
    }
    table.print(std::cout);

    const auto summary = planner.summarise(points);
    util::TableWriter totals({"Metric", "Value"});
    totals.addRow({"Peak nominal gap [VMs]",
                   util::fmt(summary.peakGapVms, 0)});
    totals.addRow({"Denied demand, nominal [VM-weeks]",
                   util::fmt(summary.deniedVmPeriodsNominal, 0)});
    totals.addRow({"Denied demand, overclocked [VM-weeks]",
                   util::fmt(summary.deniedVmPeriodsOverclock, 0)});
    totals.addRow({"Weeks the fleet ran overclocked",
                   util::fmt(summary.overclockedPeriods, 0)});
    totals.print(std::cout);

    const double bridged =
        1.0 - summary.deniedVmPeriodsOverclock /
                  std::max(1.0, summary.deniedVmPeriodsNominal);
    std::cout << "Overclocking bridges " << util::fmtPercent(bridged)
              << " of the denied demand during the crisis\n(Fig. 7's red"
                 " area), assuming memory and storage headroom exists.\n";
    return 0;
}
