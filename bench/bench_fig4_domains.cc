/**
 * @file
 * Regenerates Fig. 4 (operating-frequency domains: guaranteed / turbo /
 * overclocking / non-operating versus active core count) and the Fig. 5
 * frequency bands: the sustained frequency under air versus 2PIC, and
 * the lifetime-neutral "green band" ceiling the control plane computes.
 */

#include <iostream>

#include "core/controller.hh"
#include "hw/cpu.hh"
#include "hw/turbo.hh"
#include "power/capping.hh"
#include "reliability/lifetime.hh"
#include "reliability/stability.hh"
#include "thermal/cooling.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(
        std::cout, "Fig. 4: operating domains of the Skylake 8180 (28c)");
    const auto governor = hw::TurboGovernor::skylake8180();
    util::TableWriter domains({"Active cores", "Guaranteed up to",
                               "Turbo up to", "Overclocking up to"});
    for (int cores : {1, 4, 8, 16, 24, 28}) {
        domains.addRow({util::fmt(cores, 0),
                        util::fmt(governor.baseFrequency(), 1) + " GHz",
                        util::fmt(governor.turboCeiling(cores), 1) + " GHz",
                        util::fmt(governor.overclockBoundary(), 1) +
                            " GHz"});
    }
    domains.print(std::cout);

    util::printHeading(
        std::cout,
        "Fig. 4/5: sustained all-core frequency, air vs 2PIC (within TDP)");
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    util::TableWriter sustained({"Active cores", "Air [GHz]",
                                 "2PIC [GHz]"});
    for (int cores : {4, 8, 16, 24, 28}) {
        sustained.addRow(
            {util::fmt(cores, 0),
             util::fmt(governor.effectiveFrequency(socket, air, cores), 1),
             util::fmt(governor.effectiveFrequency(socket, fc, cores),
                       1)});
    }
    sustained.print(std::cout);

    util::printHeading(
        std::cout,
        "Fig. 5(b): lifetime-neutral green band of the Xeon W-3175X");
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("B2"));
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog;
    power::RaplCapper budget(500.0);

    util::TableWriter bands(
        {"Cooling", "All-core turbo", "Green-band ceiling", "Boost"});
    {
        thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
        core::OverclockController controller(cpu, hfe, tracker, watchdog,
                                             budget);
        const GHz ceiling = controller.greenBandCeiling();
        bands.addRow({"2PIC HFE-7000", "3.4 GHz",
                      util::fmt(ceiling, 1) + " GHz",
                      util::fmtPercent(ceiling / 3.4 - 1.0)});
    }
    {
        thermal::TwoPhaseImmersionCooling fc_ihs(
            thermal::fc3284(),
            {thermal::BoilingInterface::Coating::DirectIhs});
        core::OverclockController controller(cpu, fc_ihs, tracker,
                                             watchdog, budget);
        const GHz ceiling = controller.greenBandCeiling();
        bands.addRow({"2PIC FC-3284", "3.4 GHz",
                      util::fmt(ceiling, 1) + " GHz",
                      util::fmtPercent(ceiling / 3.4 - 1.0)});
    }
    {
        core::OverclockController controller(cpu, air, tracker, watchdog,
                                             budget);
        const GHz ceiling = controller.greenBandCeiling();
        bands.addRow({"Air", "3.4 GHz", util::fmt(ceiling, 1) + " GHz",
                      util::fmtPercent(ceiling / 3.4 - 1.0)});
    }
    bands.print(std::cout);
    std::cout << "Paper: the HFE-7000 green band reaches ~+23% over"
                 " all-core turbo at the air\nbaseline's 5-year lifetime;"
                 " air cooling has no sustainable overclocking band.\n";
    return 0;
}
