/**
 * @file
 * Regenerates Fig. 10: sustainable STREAM bandwidth (copy/scale/add/
 * triad) and server power draw across the Table VII configurations.
 */

#include <iostream>

#include "hw/configs.hh"
#include "hw/cpu.hh"
#include "thermal/cooling.hh"
#include "util/table.hh"
#include "workload/stream.hh"

using namespace imsim;

int
main()
{
    util::printHeading(std::cout,
                       "Fig. 10: STREAM sustainable bandwidth [GB/s]");
    const workload::StreamModel model;
    const std::vector<std::string> configs{"B1", "B2", "B3", "B4",
                                           "OC1", "OC2", "OC3"};
    std::vector<std::string> header{"Kernel"};
    for (const auto &name : configs)
        header.push_back(name);
    util::TableWriter table(header);
    for (auto kernel : workload::streamKernels()) {
        std::vector<std::string> row{workload::streamKernelName(kernel)};
        for (const auto &name : configs) {
            const auto &config = hw::cpuConfig(name);
            row.push_back(util::fmt(
                model.bandwidth(kernel, {config.core, config.llc,
                                         config.memory}),
                1));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    util::printHeading(std::cout, "Fig. 10: improvement over B1");
    std::vector<std::string> rel_header{"Kernel"};
    for (const auto &name : configs)
        rel_header.push_back(name);
    util::TableWriter rel(rel_header);
    for (auto kernel : workload::streamKernels()) {
        std::vector<std::string> row{workload::streamKernelName(kernel)};
        for (const auto &name : configs) {
            const auto &config = hw::cpuConfig(name);
            row.push_back(util::fmtPercent(
                model.relativeToB1(kernel, {config.core, config.llc,
                                            config.memory}) -
                1.0));
        }
        rel.addRow(row);
    }
    rel.print(std::cout);
    std::cout << "Paper: B4 +17% and OC3 +24% over B1; core and cache"
                 " clocks also lift peak\nbandwidth because requests are"
                 " issued and returned faster.\n";

    util::printHeading(std::cout, "Fig. 10: STREAM server power [W]");
    static const thermal::TwoPhaseImmersionCooling cooling(
        thermal::hfe7000());
    util::TableWriter power({"Config", "CPU package", "Server total"});
    for (const auto &name : configs) {
        const auto &config = hw::cpuConfig(name);
        auto cpu = hw::CpuModel::xeonW3175x();
        cpu.applyConfig(config);
        // STREAM keeps all cores issuing at a high duty cycle.
        const auto breakdown = cpu.power(cooling, 0.85);
        const Watts rest = 40.0 * (config.memory / 2.4) + 26.0 + 24.0;
        power.addRow({name, util::fmt(breakdown.total, 0),
                      util::fmt(breakdown.total + rest, 0)});
    }
    power.print(std::cout);
    std::cout << "Paper: ~10% average power increase across the"
                 " overclocked configurations.\n";
    return 0;
}
