/**
 * @file
 * Regenerates Fig. 11: normalized training time for six VGG variants and
 * the GPU board power under the Table VIII configurations (Base = 1.0).
 */

#include <iostream>

#include "core/gpu_planner.hh"
#include "hw/configs.hh"
#include "hw/gpu.hh"
#include "util/table.hh"
#include "workload/gpu_training.hh"

using namespace imsim;

int
main()
{
    util::printHeading(
        std::cout,
        "Fig. 11: normalized VGG training time (Base = 1.00, lower is "
        "better)");
    const workload::GpuTrainingModel model;
    const std::vector<std::string> configs{"Base", "OCG1", "OCG2", "OCG3"};

    std::vector<std::string> header{"Model"};
    for (const auto &name : configs)
        header.push_back(name);
    util::TableWriter table(header);
    for (const auto &vgg : workload::vggCatalog()) {
        std::vector<std::string> row{vgg.name};
        for (const auto &name : configs) {
            hw::GpuModel gpu;
            gpu.applyConfig(hw::gpuConfig(name));
            row.push_back(util::fmt(model.relativeTime(vgg, gpu), 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Paper shape: up to ~15% faster; the batch-optimized"
                 " VGG16B gains almost\nnothing from GPU-memory"
                 " overclocking (OCG1 -> OCG2 -> OCG3 flat), while the\n"
                 "memory-hungrier shallow variants keep improving.\n";

    util::printHeading(std::cout,
                       "Fig. 11: GPU board power while training [W]");
    util::TableWriter power({"Model", "Base avg", "Base P99", "OCG3 avg",
                             "OCG3 P99"});
    for (const auto &vgg : workload::vggCatalog()) {
        hw::GpuModel base;
        hw::GpuModel oc;
        oc.applyConfig(hw::gpuConfig("OCG3"));
        power.addRow({vgg.name,
                      util::fmt(model.trainingPower(vgg, base), 0),
                      util::fmt(model.trainingPowerP99(vgg, base), 0),
                      util::fmt(model.trainingPower(vgg, oc), 0),
                      util::fmt(model.trainingPowerP99(vgg, oc), 0)});
    }
    power.print(std::cout);

    hw::GpuModel base;
    hw::GpuModel oc;
    oc.applyConfig(hw::gpuConfig("OCG3"));
    const auto &vgg16 = workload::vggModel("VGG16");
    const double ratio = model.trainingPowerP99(vgg16, oc) /
                         model.trainingPowerP99(vgg16, base);
    std::cout << "Paper: P99 power 231 W overclocked vs 193 W baseline"
                 " (+19%); model: "
              << util::fmtPercent(ratio - 1.0) << ".\n";

    util::printHeading(
        std::cout,
        "Control plane: bottleneck-matched GPU configuration per model");
    const core::GpuPlanner planner;
    util::TableWriter plans({"Model", "Chosen config", "Speedup",
                             "Extra power [W]", "Speedup %/W"});
    for (const auto &vgg : workload::vggCatalog()) {
        const auto plan = planner.plan(vgg);
        plans.addRow({plan.modelName, plan.config->name,
                      util::fmt(plan.expectedSpeedup, 3),
                      util::fmt(plan.extraPower, 0),
                      util::fmt(plan.powerEfficiency, 2)});
    }
    plans.print(std::cout);
    std::cout << "The planner withholds the memory overclock from the"
                 " batch-optimized variants,\navoiding Fig. 11's"
                 " 'little to no improvement' power waste.\n";
    return 0;
}
