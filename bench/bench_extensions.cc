/**
 * @file
 * Extension experiments beyond the paper's numbered tables/figures, each
 * quantifying a claim the paper makes in prose:
 *
 *  1. Sec. IV: "analysis of Azure's production telemetry reveals
 *     opportunities to operate processors at even higher frequencies ...
 *     such opportunities will diminish with higher TDP values" —
 *     opportunity analysis over synthetic telemetry.
 *  2. Sec. V: "changing frequencies only takes tens of microseconds,
 *     which is much faster than scaling out" — DVFS transition costs.
 *  3. Sec. V: "overclocking could be used simply as a stop-gap solution
 *     ... until live VM migration can eliminate the problem" — hotspot
 *     response comparison.
 *  4. Sec. V: proactive scaling "can still impact application
 *     performance" — the predictive planner's overclock bridge.
 *  5. Sec. IV Takeaway 4: environmental accounting (WUE, renewables,
 *     vapor traps).
 */

#include <iostream>

#include "autoscale/predictive.hh"
#include "cluster/migration.hh"
#include "core/sku.hh"
#include "power/dvfs.hh"
#include "reliability/lifetime.hh"
#include "thermal/environment.hh"
#include "thermal/network.hh"
#include "thermal/weather.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "vm/provisioning.hh"
#include "workload/trace.hh"

using namespace imsim;

namespace {

void
opportunityAnalysis()
{
    util::printHeading(
        std::cout,
        "Sec. IV: overclocking opportunity in (synthetic) production "
        "telemetry");
    workload::TraceGenerator gen;
    util::Rng rng(2021);
    const auto trace = gen.generate(rng, 14.0);

    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});

    util::TableWriter table({"Cooling", "Effective TDP", "Guaranteed",
                             "Turbo", "Overclock", "Mean sustainable"});
    struct Row
    {
        const char *name;
        const thermal::CoolingSystem *cooling;
        Watts tdp;
    };
    const Row rows[] = {
        {"Air, today's 205 W part", &air, 205.0},
        {"Air, future high-TDP part", &air, 160.0},
        {"2PIC, today's part", &fc, 205.0},
        {"2PIC, overclock budget (+100 W)", &fc, 305.0},
    };
    for (const auto &row : rows) {
        auto governor = hw::TurboGovernor::skylake8180();
        governor.setTdp(row.tdp);
        const auto report = workload::analyzeOpportunity(
            governor, socket, *row.cooling, trace);
        table.addRow({row.name, util::fmt(row.tdp, 0) + " W",
                      util::fmt(report.guaranteedShare * 100.0, 1) + "%",
                      util::fmt(report.turboShare * 100.0, 1) + "%",
                      util::fmt(report.overclockShare * 100.0, 1) + "%",
                      util::fmt(report.meanSustainable, 2) + " GHz"});
    }
    table.print(std::cout);
    std::cout << "Shape: partial utilization leaves turbo headroom even"
                 " in air; shrinking the\npower budget (future TDPs)"
                 " erodes it; 2PIC with an overclock power budget turns\n"
                 "the headroom into guaranteed overclocking.\n";
}

void
dvfsAsymmetry()
{
    util::printHeading(std::cout,
                       "Sec. V: scale-up vs scale-out latency asymmetry");
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    const auto up = dvfs.transition(3.4, 4.1);
    const auto down = dvfs.transition(4.1, 3.4);
    util::TableWriter table({"Action", "Latency", "Notes"});
    table.addRow({"Scale-up 3.4 -> 4.1 GHz",
                  util::fmt(up.latency * 1e6, 0) + " us",
                  util::fmt(up.steps, 0) + " bins, voltage-ramp bound"});
    table.addRow({"Scale-down 4.1 -> 3.4 GHz",
                  util::fmt(down.latency * 1e6, 0) + " us",
                  "clock-first, voltage relaxes off-path"});
    table.addRow({"Scale-out (create a VM)", "60 s",
                  "Sec. VI-D's emulated creation latency"});
    table.print(std::cout);
    std::cout << "Scale-out / scale-up ratio: "
              << util::fmt(dvfs.scaleOutToScaleUpRatio(60.0, 3.4, 4.1) /
                               1e6,
                           1)
              << " million.\n";
}

void
migrationStopGap()
{
    util::printHeading(
        std::cout,
        "Sec. V: hotspot responses — endure vs migrate vs overclock");
    cluster::MigrationModel migration;
    const auto est = migration.estimate();
    std::cout << "Live migration of a 16 GB VM over 10 Gbps: "
              << util::fmt(est.totalTime, 1) << " s total, "
              << util::fmt(est.downtime * 1000.0, 0) << " ms downtime, "
              << est.rounds << " pre-copy rounds, "
              << util::fmt(est.dataCopiedGb, 1) << " GB moved.\n\n";

    const double slowdown = 0.8;
    const double oc_speedup = 1.21;
    const Seconds hotspot = 1800.0;
    const double wear_per_hour = 2e-5;

    util::TableWriter table({"Response", "Degradation [s]",
                             "Overclocked [s]", "Wear spent"});
    for (auto response : {cluster::HotspotResponse::Endure,
                          cluster::HotspotResponse::MigrateOnly,
                          cluster::HotspotResponse::OverclockOnly,
                          cluster::HotspotResponse::OverclockStopGap}) {
        const auto outcome = cluster::evaluateHotspot(
            response, slowdown, oc_speedup, hotspot, migration,
            wear_per_hour);
        const char *name =
            response == cluster::HotspotResponse::Endure ? "Endure"
            : response == cluster::HotspotResponse::MigrateOnly
                ? "Migrate only"
            : response == cluster::HotspotResponse::OverclockOnly
                ? "Overclock only"
                : "Overclock + migrate (stop-gap)";
        table.addRow({name, util::fmt(outcome.degradationSeconds, 1),
                      util::fmt(outcome.overclockedTime, 0),
                      util::fmt(outcome.wearFractionSpent * 1e6, 2) +
                          " ppm"});
    }
    table.print(std::cout);
    std::cout << "The stop-gap gets migration's permanence at"
                 " overclocking's immediacy, spending\nonly the migration"
                 " window's worth of wear.\n";
}

void
predictiveBridge()
{
    util::printHeading(
        std::cout,
        "Extension: predictive scale-out with an overclock bridge");
    autoscale::HoltForecaster forecaster;
    // A surge ramping at +0.4 %/s from 30 % utilization.
    for (int i = 0; i <= 12; ++i)
        forecaster.observe(i * 10.0, 0.30 + 0.004 * i * 10.0);

    util::TableWriter table({"Threshold", "Breach ETA", "Scale out now",
                             "Overclock bridge"});
    for (double threshold : {0.95, 0.90, 0.80}) {
        const auto decision = autoscale::planProactive(
            forecaster, threshold, 60.0, 600.0);
        table.addRow(
            {util::fmt(threshold * 100.0, 0) + "%",
             decision.predictedBreach >= 0.0
                 ? util::fmt(decision.predictedBreach, 0) + " s"
                 : "beyond horizon",
             decision.scaleOutNow ? "yes" : "not yet",
             decision.overclockBridge ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "When the predicted breach beats the 60 s VM-creation"
                 " latency, prediction alone\ncannot save the SLO — the"
                 " overclock bridge covers the gap (composing Sec. V's\n"
                 "proactive scaling with OC-E).\n";
}

void
environment()
{
    util::printHeading(std::cout,
                       "Sec. IV Takeaway 4: environmental accounting "
                       "(per server, per year)");
    thermal::EnvironmentModel model;
    util::TableWriter table({"Configuration", "Energy [kWh]",
                             "Water [m^3]", "CO2e energy [kg]",
                             "CO2e vapor [kg]", "CO2e total [kg]"});
    struct Row
    {
        const char *name;
        thermal::CoolingTech tech;
        Watts power;
        double vapor_g;
    };
    const Row rows[] = {
        {"Air (evaporative), 636 W",
         thermal::CoolingTech::DirectEvaporative, 636.0, 0.0},
        {"2PIC nominal, 572 W", thermal::CoolingTech::Immersion2P, 572.0,
         600.0},
        {"2PIC overclocked, 682 W", thermal::CoolingTech::Immersion2P,
         682.0, 600.0},
    };
    for (const auto &row : rows) {
        const auto fp =
            model.footprint(row.tech, row.power, row.vapor_g);
        table.addRow({row.name, util::fmt(fp.energyKwh, 0),
                      util::fmt(fp.waterLiters / 1000.0, 1),
                      util::fmt(fp.co2EnergyKg, 0),
                      util::fmt(fp.co2VaporKg, 1),
                      util::fmt(fp.co2TotalKg, 0)});
    }
    table.print(std::cout);
    std::cout << "2PIC wins on energy carbon and ties on water, but the"
                 " fluids' high GWP makes\nthe vapor traps load-bearing:"
                 " even at 95% capture, residual vapor loss rivals\nthe"
                 " energy saving, and without traps it would dominate —"
                 " exactly why the paper\nseals the tanks and traps vapor"
                 " at both tank and facility level (Takeaway 4).\n";
}

void
skuEconomics()
{
    util::printHeading(
        std::cout,
        "Sec. V: high-performance VM SKU economics (Fig. 5c)");
    // Wear rate of the HFE-7000 green band vs the paper's 5-year budget:
    // the overclocked part still lasts ~5 years, so the *extra* wear per
    // hour is the overclocked rate minus the nominal rate.
    const reliability::LifetimeModel lifetime;
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    const double wear_oc =
        lifetime.failureRate(scenarios[5].condition).total /
        units::kHoursPerYear;
    const double wear_nominal =
        lifetime.failureRate(scenarios[4].condition).total /
        units::kHoursPerYear;
    const double extra_wear = wear_oc - wear_nominal;

    util::TableWriter table({"Workload class", "Config", "Speedup",
                             "Break-even premium", "Value premium",
                             "Sellable"});
    for (const char *name : {"BI", "SPECJBB", "SQL", "TeraSort"}) {
        const auto econ = core::priceHighPerfSku(
            workload::app(name), 4, /*extra_power_w=*/110.0, extra_wear);
        table.addRow({econ.appClass, econ.configName,
                      util::fmt(econ.speedup, 2),
                      util::fmtPercent(econ.breakEvenPremium),
                      util::fmtPercent(econ.valuePremium),
                      econ.sellable ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "In the green band the wear premium is tiny, so the"
                 " break-even uplift is a few\npercent against a"
                 " double-digit performance premium — the SKU sells"
                 " itself.\n";
}

void
thermalTransients()
{
    util::printHeading(
        std::cout,
        "Extension: immersed heat-path transients (thermal RC network)");
    auto rig = thermal::makeImmersedCpuNetwork(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    rig.network.inject(rig.die, 205.0);
    rig.network.settle();

    util::TableWriter steady({"Node", "Steady T at 205 W [C]"});
    for (auto id : {rig.die, rig.spreader, rig.fluid, rig.coolant}) {
        steady.addRow({rig.network.name(id),
                       util::fmt(rig.network.temperature(id), 1)});
    }
    steady.print(std::cout);

    // Step the die to the overclocked 305 W and watch the response.
    rig.network.inject(rig.die, 305.0);
    util::TableWriter transient({"t [s]", "Die [C]", "Fluid [C]"});
    Seconds t = 0.0;
    for (Seconds dt : {1.0, 4.0, 10.0, 45.0, 240.0, 900.0}) {
        rig.network.step(dt);
        t += dt;
        transient.addRow({util::fmt(t, 0),
                          util::fmt(rig.network.temperature(rig.die), 1),
                          util::fmt(rig.network.temperature(rig.fluid),
                                    2)});
    }
    transient.print(std::cout);
    std::cout << "The die settles to its overclocked temperature within"
                 " seconds while the tank\nfluid barely moves — the"
                 " thermal inertia that keeps DTj narrow in Table V.\n";
}

void
seasonalMargins()
{
    util::printHeading(
        std::cout,
        "Extension: weather and the condenser's subcooling margin");
    thermal::WeatherModel weather;
    util::TableWriter table({"Scene", "Ambient [C]", "Coolant [C]",
                             "FC-3284 margin [C]", "HFE-7000 margin [C]"});
    struct Scene
    {
        const char *name;
        Seconds t;
    };
    const Scene scenes[] = {
        {"Winter night", 20.0 * 86400.0 + 3.0 * 3600.0},
        {"Spring noon", 110.0 * 86400.0 + 12.0 * 3600.0},
        {"Summer afternoon", 200.0 * 86400.0 + 15.0 * 3600.0},
    };
    for (const auto &scene : scenes) {
        table.addRow(
            {scene.name, util::fmt(weather.ambient(scene.t), 1),
             util::fmt(weather.coolantSupply(scene.t), 1),
             util::fmt(weather.subcoolingMargin(thermal::fc3284(),
                                                scene.t), 1),
             util::fmt(weather.subcoolingMargin(thermal::hfe7000(),
                                                scene.t), 1)});
    }
    table.print(std::cout);
    std::cout << "HFE-7000's 34 C boiling point leaves slim summer"
                 " margins at a temperate site;\nFC-3284's 50 C point is"
                 " weather-proof — the fluid choice trades junction\n"
                 "temperature (Table V) against condenser margin.\n";
}

void
provisioningTail()
{
    util::printHeading(
        std::cout,
        "Extension: VM provisioning-latency distribution (paper ref [4])");
    vm::ProvisioningModel model;
    util::Rng rng(11);
    util::TableWriter table({"Percentile", "Creation latency [s]"});
    for (double p : {50.0, 90.0, 99.0}) {
        table.addRow({"P" + util::fmt(p, 0),
                      util::fmt(model.percentileTotal(rng, p), 1)});
    }
    table.print(std::cout);
    std::cout << "Mean " << util::fmt(model.meanTotal(), 0)
              << " s (the paper's emulated 60 s). The long creation tail"
                 " is what the\noverclock bridge covers: frequency"
                 " changes take microseconds regardless of\nwhich"
                 " percentile the new VM lands on.\n";
}

} // namespace

int
main()
{
    opportunityAnalysis();
    dvfsAsymmetry();
    migrationStopGap();
    predictiveBridge();
    environment();
    skuEconomics();
    thermalTransients();
    seasonalMargins();
    provisioningTail();
    return 0;
}
