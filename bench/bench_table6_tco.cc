/**
 * @file
 * Regenerates Table VI (TCO relative to the air-cooled baseline, per
 * physical core) and the Sec. VI-C cost-per-virtual-core analysis under
 * 10 % CPU oversubscription.
 */

#include <iostream>

#include "tco/tco.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    const tco::TcoModel model;
    const auto non_oc =
        model.evaluate(tco::Scenario::NonOverclockable2Pic);
    const auto oc = model.evaluate(tco::Scenario::Overclockable2Pic);

    util::printHeading(std::cout,
                       "Table VI: TCO relative to the air-cooled baseline");
    util::TableWriter table(
        {"Category", "Non-overclockable 2PIC", "Overclockable 2PIC"});
    for (std::size_t i = 0; i < non_oc.rows.size(); ++i) {
        table.addRow({non_oc.rows[i].category,
                      util::fmtPercent(non_oc.rows[i].deltaOfBaselineTotal),
                      util::fmtPercent(oc.rows[i].deltaOfBaselineTotal)});
    }
    table.addRow({"Cost per physical core",
                  util::fmtPercent(non_oc.costPerCoreDelta),
                  util::fmtPercent(oc.costPerCoreDelta)});
    table.print(std::cout);
    std::cout << "Paper: -7% (non-overclockable) and -4% (overclockable);"
                 " rows: servers -1%/0,\nnetwork +1%, construction -2%,"
                 " energy -2%/0, operations -2%, design -2%,\nimmersion"
                 " +1%.\n";

    util::printHeading(
        std::cout,
        "Derived: fleet growth from the PUE reclaim (same power envelope)");
    std::cout << "2PIC hosts " << util::fmtPercent(non_oc.coreRatio - 1.0)
              << " more physical cores than the air baseline.\n";

    util::printHeading(
        std::cout,
        "Sec. VI-C: cost per virtual core with 10% oversubscription");
    util::TableWriter vcore({"Scenario", "Oversubscription",
                             "Effectiveness", "Cost per vcore vs air"});
    vcore.addRow({"Air-cooled", "0%", "-",
                  util::fmtPercent(model.costPerVcoreRelative(
                                       tco::Scenario::AirCooled, 0.0) -
                                   1.0)});
    vcore.addRow(
        {"Non-overclockable 2PIC", "10%", "35% (no compensation)",
         util::fmtPercent(
             model.costPerVcoreRelative(
                 tco::Scenario::NonOverclockable2Pic, 0.10, 0.35) -
             1.0)});
    vcore.addRow(
        {"Overclockable 2PIC", "10%", "100% (overclock compensates)",
         util::fmtPercent(model.costPerVcoreRelative(
                              tco::Scenario::Overclockable2Pic, 0.10,
                              1.0) -
                          1.0)});
    vcore.print(std::cout);
    std::cout << "Paper: -13% for overclockable 2PIC, ~-10% for"
                 " non-overclockable 2PIC.\n";

    util::printHeading(std::cout,
                       "Sensitivity: oversubscription sweep (overclockable)");
    util::TableWriter sweep({"Oversubscription", "Cost per vcore vs air"});
    for (double ratio : {0.0, 0.05, 0.10, 0.15, 0.20}) {
        sweep.addRow(
            {util::fmt(ratio * 100.0, 0) + "%",
             util::fmtPercent(model.costPerVcoreRelative(
                                  tco::Scenario::Overclockable2Pic, ratio) -
                              1.0)});
    }
    sweep.print(std::cout);
    return 0;
}
