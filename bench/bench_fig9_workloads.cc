/**
 * @file
 * Regenerates Fig. 9: normalized metric of interest plus average and
 * P99 server power for the cloud applications of Table IX across the
 * Table VII configurations (B2 = 1.0 baseline).
 *
 * Latency-metric rows come from the M/G/k queueing simulation with
 * service times scaled by the bottleneck model; time/throughput rows
 * come from the bottleneck model directly. Power is the small-tank-#1
 * server (Xeon W-3175X in HFE-7000) at each application's activity.
 *
 * The (application x config) grid fans across the experiment engine
 * (--jobs N); every queueing cell seeds its own simulation, so the
 * table is identical for any worker count. --report FILE dumps the
 * normalized metrics as JSON.
 */

#include <iostream>

#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "hw/configs.hh"
#include "hw/cpu.hh"
#include "sim/simulation.hh"
#include "thermal/cooling.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "workload/app.hh"
#include "workload/perf.hh"
#include "workload/queueing.hh"

using namespace imsim;

namespace {

/** Rest-of-server power for the small-tank-#1 machine [W]. */
Watts
restOfServer(GHz mem_clock)
{
    // 8 DIMMs at 5 W (scaling with clock) + motherboard + storage.
    return 40.0 * (mem_clock / 2.4) + 26.0 + 24.0;
}

/** Server power for an app under a config. */
Watts
serverPower(const workload::AppProfile &app, const hw::CpuConfig &config,
            double burst)
{
    static const thermal::TwoPhaseImmersionCooling cooling(
        thermal::hfe7000());
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(config);
    const double activity = std::min(1.0, app.activity * burst);
    return cpu.power(cooling, activity).total + restOfServer(config.memory);
}

/** Normalized latency metric via the queueing simulation. */
double
queueingMetric(const workload::AppProfile &app, const hw::CpuConfig &config)
{
    const auto run = [&](GHz core, double service_scale) {
        sim::Simulation sim;
        workload::QueueingCluster::Params params;
        params.serviceMean = app.serviceMean * service_scale;
        params.serviceCv = app.serviceCv;
        params.kappa = 1.0; // Scaling is already folded into the mean.
        params.refFreq = core;
        params.threadsPerServer = app.cores;
        workload::QueueingCluster cluster(sim, util::Rng(99), params);
        cluster.addServer(core);
        // Load the app to ~55 % of one VM.
        cluster.setArrivalRate(0.55 * app.cores / app.serviceMean);
        sim.runUntil(120.0);
        return app.metric == workload::Metric::P99Latency
                   ? cluster.latencies().p99()
                   : cluster.latencies().p95();
    };
    // Fold the full bottleneck model into the service-time scale.
    const double scale = workload::relativeTime(
        app.work, {config.core, config.llc, config.memory});
    const double baseline = run(3.4, 1.0);
    const double value = run(config.core, scale);
    return value / baseline;
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags: --jobs N (default hardware concurrency), --report FILE,
    // --progress [FILE], --profile [FILE].
    const util::Cli cli(argc, argv);
    obs::maybeEnableProfiler(cli);
    const auto progress = exp::progressFromCli(cli, "fig9_workloads");
    util::printHeading(
        std::cout,
        "Fig. 9: normalized metric (B2 = 1.00; latency/time rows: lower "
        "is better,\nOPS rows: higher is better)");

    const std::vector<std::string> configs{"B1", "B3", "B4",
                                           "OC1", "OC2", "OC3"};
    std::vector<std::string> header{"Application", "Metric"};
    for (const auto &name : configs)
        header.push_back(name);
    util::TableWriter table(header);

    const auto &apps = workload::appCatalog();
    exp::SweepRunner runner({cli.jobs(), 9, progress.get()});
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, runner.seed(), runner.jobs());
    std::vector<exp::Params> grid;
    for (const auto &app : apps)
        for (const auto &name : configs)
            grid.push_back(exp::Params{{"app", app.name},
                                       {"config", name}});

    // One sweep point per (app, config) cell, app-major like the grid.
    exp::RunReport report = runner.run(
        "fig9_workloads", grid,
        [&](const exp::Params &, std::size_t i, util::Rng &,
            exp::MetricsRegistry &metrics) {
            const auto &app = apps[i / configs.size()];
            const auto &config =
                hw::cpuConfig(configs[i % configs.size()]);
            const bool latency =
                app.metric == workload::Metric::P95Latency ||
                app.metric == workload::Metric::P99Latency;
            metrics.scalar("normalized",
                           latency ? queueingMetric(app, config)
                                   : workload::relativeMetric(
                                         app, {config.core, config.llc,
                                               config.memory}));
        });

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &app = apps[a];
        std::vector<std::string> row{app.name,
                                     workload::metricName(app.metric)};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &record =
                report.records()[a * configs.size() + c];
            row.push_back(
                util::fmt(record.metrics.get("normalized"), 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Paper shape: every app improves 10-25% under"
                 " overclocking; OC1 (core) is the\nbiggest single lever"
                 " except for TeraSort and DiskSpeed; memory overclocking"
                 "\n(OC3) helps memory-bound SQL most; Training and BI"
                 " barely respond to cache or\nmemory clocks.\n";

    util::printHeading(std::cout,
                       "Fig. 9 (lower panel): server power draw [W]");
    std::vector<std::string> pheader{"Application", "Power"};
    for (const auto &name : configs)
        pheader.push_back(name);
    pheader.push_back("B2");
    util::TableWriter power_table(pheader);
    for (const auto &app : workload::appCatalog()) {
        std::vector<std::string> avg{app.name, "avg"};
        std::vector<std::string> p99{"", "P99"};
        for (const auto &name : configs) {
            const auto &config = hw::cpuConfig(name);
            avg.push_back(util::fmt(serverPower(app, config, 1.0), 0));
            p99.push_back(
                util::fmt(serverPower(app, config, app.burstiness), 0));
        }
        const auto &b2 = hw::cpuConfig("B2");
        avg.push_back(util::fmt(serverPower(app, b2, 1.0), 0));
        p99.push_back(util::fmt(serverPower(app, b2, app.burstiness), 0));
        power_table.addRow(avg);
        power_table.addRow(p99);
    }
    power_table.print(std::cout);
    std::cout << "Paper shape: OC1 raises P99 power noticeably; OC2 adds"
                 " only marginal power;\nOC3 (memory) raises power"
                 " substantially for every app.\n";

    report.setMeta(manifest.entries());
    exp::maybeWriteReport(cli, report, std::cout);
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
