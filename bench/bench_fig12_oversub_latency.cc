/**
 * @file
 * Regenerates Fig. 12: average P95 latency of four 4-vcore SQL VMs as
 * the assigned pcore count sweeps from 8 (50 % oversubscription) to 16
 * (none), under B2 and OC3, plus the Sec. VI-C power readings.
 *
 * The (pcores x config) grid fans across the experiment engine; each
 * point's hypervisor simulation seeds its own Rng, so the table is
 * identical for any --jobs value. "--report out.json" dumps the sweep
 * as a structured artifact.
 */

#include <iostream>

#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "hw/configs.hh"
#include "hw/cpu.hh"
#include "thermal/cooling.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "vm/hypervisor.hh"
#include "workload/app.hh"

using namespace imsim;

namespace {

double
averageP95(int pcores, const hw::DomainClocks &clocks)
{
    // 480 QPS per VM keeps even the 8-pcore (50% oversubscribed) point
    // inside the stable-queue region while loading the host to ~96%.
    vm::HypervisorSim sim(pcores, clocks, util::Rng(12));
    for (int i = 0; i < 4; ++i)
        sim.addLatencyVm(workload::app("SQL"), 480.0);
    sim.run(20.0); // Warmup.
    sim.resetStats();
    sim.run(120.0);
    double total = 0.0;
    for (const auto &res : sim.results())
        total += res.p95Latency;
    return total / 4.0;
}

Watts
serverPower(int active_pcores, const hw::CpuConfig &config, bool p99)
{
    static const thermal::TwoPhaseImmersionCooling cooling(
        thermal::hfe7000());
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(config);
    // SQL keeps the active pcores at roughly their busy fraction; P99
    // periods push them close to fully busy.
    const double duty = p99 ? 0.85 : 0.62;
    const double activity = duty * active_pcores / 28.0;
    return cpu.power(cooling, activity).total + 40.0 + 26.0 + 24.0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags: --jobs N (default hardware concurrency), --report FILE,
    // --progress [FILE], --profile [FILE].
    const util::Cli cli(argc, argv);
    const std::vector<int> pcore_steps{8, 10, 12, 14, 16};
    const std::vector<std::string> configs{"B2", "OC3"};
    obs::maybeEnableProfiler(cli);
    const auto progress =
        exp::progressFromCli(cli, "fig12_oversub_latency");

    util::printHeading(
        std::cout,
        "Fig. 12: average P95 latency of 4 x SQL (4 vcores each) vs "
        "assigned pcores");

    exp::SweepRunner runner({cli.jobs(), 12, progress.get()});
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, runner.seed(), runner.jobs());
    std::vector<exp::Params> grid;
    for (int pcores : pcore_steps)
        for (const auto &name : configs)
            grid.push_back(exp::Params{
                {"pcores", util::fmt(pcores, 0)}, {"config", name}});

    exp::RunReport report = runner.run(
        "fig12_oversub_latency", grid,
        [](const exp::Params &point, std::size_t, util::Rng &,
           exp::MetricsRegistry &metrics) {
            const int pcores = std::stoi(point[0].second);
            const auto &config = hw::cpuConfig(point[1].second);
            const hw::DomainClocks clocks{config.core, config.llc,
                                          config.memory};
            metrics.scalar("p95_ms", averageP95(pcores, clocks) * 1000.0);
        });
    report.setMeta(manifest.entries());

    const auto p95_ms = [&](int pcores, const std::string &config) {
        for (const auto &record : report.records())
            if (record.params[0].second == util::fmt(pcores, 0) &&
                record.params[1].second == config)
                return record.metrics.get("p95_ms") / 1000.0;
        util::fatal("fig12: sweep point missing");
    };

    const double base = p95_ms(16, "B2");
    util::TableWriter table({"pcores", "Oversubscription", "B2 P95 [ms]",
                             "OC3 P95 [ms]", "B2 vs 16-pcore B2",
                             "OC3 vs 16-pcore B2"});
    for (int pcores : pcore_steps) {
        const double b2_p95 = p95_ms(pcores, "B2");
        const double oc3_p95 = p95_ms(pcores, "OC3");
        table.addRow(
            {util::fmt(pcores, 0),
             util::fmt((16.0 - pcores) / pcores * 100.0, 0) + "%",
             util::fmt(b2_p95 * 1000.0, 2),
             util::fmt(oc3_p95 * 1000.0, 2),
             util::fmtPercent(b2_p95 / base - 1.0),
             util::fmtPercent(oc3_p95 / base - 1.0)});
    }
    table.print(std::cout);

    // Crossover: the fewest pcores at which OC3 still matches the
    // 16-pcore B2 baseline.
    int crossover = 16;
    for (int pcores : pcore_steps) {
        if (p95_ms(pcores, "OC3") <= base * 1.01) {
            crossover = pcores;
            break;
        }
    }
    std::cout << "Crossover: OC3 matches the 16-pcore B2 baseline down to "
              << crossover << " pcores (paper: 12).\nNote: the GPS"
                 " hypervisor model omits cache/bandwidth interference,"
                 " so overclocking\nlooks somewhat stronger here than on"
                 " the paper's hardware — the saved-pcores\nclaim holds"
                 " conservatively.\n";

    util::printHeading(std::cout,
                       "Sec. VI-C power readings for the SQL sweep [W]");
    util::TableWriter power({"Config", "Active pcores", "Average", "P99"});
    const auto &b2 = hw::cpuConfig("B2");
    const auto &oc3 = hw::cpuConfig("OC3");
    for (int pcores : {12, 16}) {
        power.addRow({"B2", util::fmt(pcores, 0),
                      util::fmt(serverPower(pcores, b2, false), 0),
                      util::fmt(serverPower(pcores, b2, true), 0)});
    }
    for (int pcores : {12, 16}) {
        power.addRow({"OC3", util::fmt(pcores, 0),
                      util::fmt(serverPower(pcores, oc3, false), 0),
                      util::fmt(serverPower(pcores, oc3, true), 0)});
    }
    power.print(std::cout);
    std::cout << "Paper: B2 120/130 W avg (126/140 P99) at 12/16 pcores;"
                 " OC3 160/173 W avg\n(169/180 P99) — a 29-33% increase"
                 " from the +20% core and uncore clocks.\n";

    exp::maybeWriteReport(cli, report, std::cout);
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
