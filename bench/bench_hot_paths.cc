/**
 * @file
 * Hot-path performance harness: times the three loops the fleet-scale
 * experiments live in — kernel event dispatch, M/G/k request service,
 * and the datacenter power minute loop — and emits a machine-readable
 * `BENCH_hotpaths.json` so every PR can diff throughput against the
 * previous baseline (see scripts/bench.sh and DESIGN.md §"Performance
 * & hot paths").
 *
 * The binary also instruments global operator new with an allocation
 * counter: each benchmark reports steady-state heap allocations per
 * operation, which pins the allocation contract (kernel events and
 * datacenter minutes must be allocation-free after warm-up).
 *
 * Flags:
 *   --smoke           tiny iteration counts (the `ctest -L perf` target);
 *   --scale X         multiply the default iteration counts by X;
 *   --out FILE        JSON destination (default: BENCH_hotpaths.json);
 *   --baseline FILE   compare this run against a previous JSON dump and
 *                     exit non-zero when a hot path regressed;
 *   --tolerance FRAC  allowed ns/op slowdown fraction in --baseline
 *                     mode (default 0.30 — container timing is noisy;
 *                     allocs/op is always compared tightly);
 *   --sim-threads N   threads for the sharded benches (default 8;
 *                     results are bit-identical for any value, only
 *                     the wall-clock moves).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include <sstream>

#include "cluster/datacenter.hh"
#include "fleet/kernels.hh"
#include "obs/blackbox.hh"
#include "obs/manifest.hh"
#include "power/server_power.hh"
#include "reliability/lifetime.hh"
#include "sim/simulation.hh"
#include "thermal/cooling.hh"
#include "thermal/fluid.hh"
#include "thermal/junction.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/shard.hh"
#include "workload/queueing.hh"

namespace {

/// Heap allocations observed process-wide since start-up.
std::atomic<std::uint64_t> allocCalls{0};

std::uint64_t
allocsSoFar()
{
    return allocCalls.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t size)
{
    allocCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace imsim;
using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/** One benchmark's result row (the JSON schema, one object per row). */
struct BenchResult
{
    std::string name;       ///< Stable benchmark identifier.
    std::string unit;       ///< What one operation is.
    std::uint64_t iterations = 0;
    double nsPerOp = 0.0;
    double opsPerSec = 0.0;
    double allocsPerOp = 0.0; ///< Steady-state heap allocations / op.
};

BenchResult
makeResult(const std::string &name, const std::string &unit,
           std::uint64_t iterations, double wall_s, std::uint64_t allocs)
{
    BenchResult r;
    r.name = name;
    r.unit = unit;
    r.iterations = iterations;
    const double ops = static_cast<double>(iterations);
    r.nsPerOp = iterations > 0 ? wall_s * 1e9 / ops : 0.0;
    r.opsPerSec = wall_s > 0.0 ? ops / wall_s : 0.0;
    r.allocsPerOp =
        iterations > 0 ? static_cast<double>(allocs) / ops : 0.0;
    return r;
}

// ---------------------------------------------------------------------
// Kernel: periodic re-arm dispatch.
// ---------------------------------------------------------------------

BenchResult
benchKernelPeriodic(std::uint64_t target_events)
{
    sim::Simulation sim;
    std::uint64_t fired = 0;
    constexpr int kStreams = 64;
    for (int i = 0; i < kStreams; ++i)
        sim.every(0.5 + 0.01 * static_cast<double>(i),
                  [&fired] { ++fired; });

    // Warm-up: the queue, slab, and bookkeeping reach steady size.
    sim.runUntil(500.0);

    const std::uint64_t executed0 = sim.eventsExecuted();
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    Seconds horizon = sim.now();
    while (sim.eventsExecuted() - executed0 < target_events) {
        horizon += 1000.0;
        sim.runUntil(horizon);
    }
    const auto t1 = Clock::now();
    const std::uint64_t events = sim.eventsExecuted() - executed0;
    util::fatalIf(fired == 0, "bench: periodic events never fired");
    return makeResult("kernel_periodic_events", "event", events,
                      elapsedSeconds(t0, t1), allocsSoFar() - allocs0);
}

// ---------------------------------------------------------------------
// Kernel: one-shot schedule/fire churn.
// ---------------------------------------------------------------------

struct ChainCtx
{
    sim::Simulation *sim;
    Seconds dt;
    std::uint64_t fired = 0;
};

// Each step schedules its successor through a one-pointer closure so
// the callback fits std::function's small-buffer storage: the bench
// measures the kernel's own allocations, not the closure's.
void
chainStep(ChainCtx *ctx)
{
    ++ctx->fired;
    ctx->sim->after(ctx->dt, [ctx] { chainStep(ctx); });
}

BenchResult
benchKernelOneShot(std::uint64_t target_events)
{
    sim::Simulation sim;
    constexpr int kChains = 32;
    std::vector<ChainCtx> chains(kChains);
    for (int i = 0; i < kChains; ++i) {
        chains[i].sim = &sim;
        chains[i].dt = 1e-3 + 1e-5 * static_cast<double>(i);
        ChainCtx *ctx = &chains[i];
        sim.after(chains[i].dt, [ctx] { chainStep(ctx); });
    }

    sim.runUntil(1.0); // Warm-up.

    const std::uint64_t executed0 = sim.eventsExecuted();
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    Seconds horizon = sim.now();
    while (sim.eventsExecuted() - executed0 < target_events) {
        horizon += 5.0;
        sim.runUntil(horizon);
    }
    const auto t1 = Clock::now();
    const std::uint64_t events = sim.eventsExecuted() - executed0;
    return makeResult("kernel_oneshot_events", "event", events,
                      elapsedSeconds(t0, t1), allocsSoFar() - allocs0);
}

// ---------------------------------------------------------------------
// M/G/k queueing cluster request throughput.
// ---------------------------------------------------------------------

BenchResult
benchQueueing(std::uint64_t target_requests)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    // Retain only as much utilization history as the warm-up below
    // covers: the per-server sliding-window rings reach their steady
    // footprint before timing starts instead of growing (and
    // allocating) for the default 200 s of simulated time.
    params.utilWindow = 5.0;
    workload::QueueingCluster cluster(sim, util::Rng(1234), params);
    constexpr int kServers = 8;
    for (int i = 0; i < kServers; ++i)
        cluster.addServer(params.refFreq);
    // ~70% utilization: kServers * threads / serviceMean * 0.7.
    const double capacity = static_cast<double>(kServers) *
                            static_cast<double>(params.threadsPerServer) /
                            params.serviceMean;
    // Warm up HOTTER than the measured load (90% vs 70% utilization):
    // every growable structure — the backlog ring, the per-server
    // sliding-window rings, the latency reservoir — reaches a capacity
    // ceiling comfortably above anything the steady 70% loop can
    // occupy, so the timed window below performs zero allocations
    // instead of catching the odd burst-driven ring doubling. The
    // latency reservoir is additionally primed through one full 5 s
    // horizon chunk (the measurement loop resets it every chunk, and
    // reset() keeps capacity).
    cluster.setArrivalRate(0.9 * capacity);
    sim.runUntil(5.0); // Past the empty-system transient.
    cluster.resetLatencies();
    sim.runUntil(10.0); // One full reservoir chunk at the hot rate.
    cluster.setArrivalRate(0.7 * capacity);
    sim.runUntil(15.0); // Drain back to the measured operating point.
    cluster.resetLatencies();

    const std::uint64_t completed0 = cluster.completed();
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    Seconds horizon = sim.now();
    while (cluster.completed() - completed0 < target_requests) {
        horizon += 5.0;
        sim.runUntil(horizon);
        // Keep the latency reservoir from dominating memory at large
        // iteration counts; throughput is unaffected.
        cluster.resetLatencies();
    }
    const auto t1 = Clock::now();
    const std::uint64_t requests = cluster.completed() - completed0;
    return makeResult("queueing_requests", "request", requests,
                      elapsedSeconds(t0, t1), allocsSoFar() - allocs0);
}

// ---------------------------------------------------------------------
// Datacenter power minute loop.
// ---------------------------------------------------------------------

cluster::DatacenterPowerSim
makeDatacenter()
{
    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    std::vector<cluster::RackConfig> racks;
    constexpr int kRacks = 24;
    for (int i = 0; i < kRacks; ++i)
        racks.push_back(i % 3 == 2 ? latency : batch);
    // ~30% oversubscribed against the fleet's 403 kW nominal peak.
    return cluster::DatacenterPowerSim(racks, 320000.0, 1.3, 1.2);
}

BenchResult
benchDatacenter(double days)
{
    const auto dc = makeDatacenter();

    // The minute loop's allocation count is isolated by differencing
    // two runs of different lengths: setup (trace generation, scratch
    // sizing) costs the same fixed number of allocations in both, so
    // the delta is attributable to the extra simulated minutes alone.
    util::Rng rng_short(2021);
    const std::uint64_t allocs_short0 = allocsSoFar();
    dc.run(cluster::OverclockPolicy::PowerAware, rng_short, days);
    const std::uint64_t allocs_short = allocsSoFar() - allocs_short0;

    util::Rng rng_long(2021);
    const std::uint64_t allocs_long0 = allocsSoFar();
    const auto t0 = Clock::now();
    dc.run(cluster::OverclockPolicy::PowerAware, rng_long, 2.0 * days);
    const auto t1 = Clock::now();
    const std::uint64_t allocs_long = allocsSoFar() - allocs_long0;

    const auto minutes =
        static_cast<std::uint64_t>(2.0 * days * units::kMinutesPerDay);
    const auto extra_minutes =
        static_cast<std::uint64_t>(days * units::kMinutesPerDay);
    const std::uint64_t loop_allocs =
        allocs_long > allocs_short ? allocs_long - allocs_short : 0;
    auto r = makeResult("datacenter_minutes", "minute", minutes,
                        elapsedSeconds(t0, t1), 0);
    r.allocsPerOp = static_cast<double>(loop_allocs) /
                    static_cast<double>(extra_minutes);
    return r;
}

// ---------------------------------------------------------------------
// Fleet batched physics step vs the equivalent per-object loop.
// ---------------------------------------------------------------------

/// Mixed-SKU table: the immersed Open Compute blade plus the same blade
/// under air cooling, so the kernels' per-SKU hoisting is exercised.
std::vector<fleet::SkuParams>
makeFleetSkus()
{
    auto physics = cluster::PerServerPhysics::openComputeImmersed();
    std::vector<fleet::SkuParams> skus = std::move(physics.skus);
    const auto server = power::ServerPowerModel::openComputeBlade();
    const thermal::AirCooling air;
    skus.push_back(fleet::SkuParams::fromModels(
        server.socketModel(), server.socketCount(),
        /*constant_power=*/200.0, air, /*thermal_cap=*/400.0,
        /*oc_ratio=*/1.23, /*t_min=*/air.referenceTemperature(0.0)));
    return skus;
}

/// Shared fleet shape for both step benchmarks: alternate SKUs,
/// utilization spread over [0.05, 0.95], every 7th server overclocked.
void
populateFleet(fleet::FleetState &state,
              const std::vector<fleet::SkuParams> &skus,
              std::size_t servers)
{
    state.reserve(servers);
    for (std::size_t i = 0; i < servers; ++i) {
        const std::uint32_t sku =
            static_cast<std::uint32_t>(i % skus.size());
        state.addServers(1, sku, skus[sku].coolantRef);
        state.utilization[i] =
            0.05 + 0.9 * static_cast<double>(i % 97) / 96.0;
        state.freqLevel[i] =
            i % 7 == 0 ? fleet::kOverclocked : fleet::kNominal;
    }
}

/// Fleet size for the step benchmarks: large enough that per-server
/// state no longer fits the fastest caches, the regime the SoA layout
/// is built for (ROADMAP's 100k+-server target).
constexpr std::size_t kFleetServers = 16384;

BenchResult
benchFleetStep(std::uint64_t target_server_minutes)
{
    const auto skus = makeFleetSkus();
    constexpr std::size_t kServers = kFleetServers;
    fleet::FleetState state;
    populateFleet(state, skus, kServers);

    // Warm-up: one step sizes the thermal decay scratch.
    fleet::stepAll(state, skus, 60.0);

    const std::uint64_t minutes =
        std::max<std::uint64_t>(1, target_server_minutes / kServers);
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    for (std::uint64_t m = 0; m < minutes; ++m)
        fleet::stepAll(state, skus, 60.0);
    const auto t1 = Clock::now();
    util::fatalIf(state.meanTj() <= 0.0, "bench: fleet step went cold");
    return makeResult("fleet_step", "server_minute", minutes * kServers,
                      elapsedSeconds(t0, t1), allocsSoFar() - allocs0);
}

/// One server of the per-object architecture the fleet kernels
/// replace: every server owns its scalar model objects, the way
/// DatacenterPowerSim would have had to hold them without FleetState.
struct ScalarServer
{
    power::SocketPowerModel socket;
    thermal::ThermalNode node;
    reliability::WearTracker tracker;
    const thermal::CoolingSystem *cooling;
    GHz frequency;
    double utilization;
    Celsius tMin;
};

/// The loop fleet/kernels.cc replaces: an array of per-server objects
/// stepped one at a time through the scalar APIs (SocketPowerModel +
/// ThermalNode + WearTracker, with the virtual cooling-system
/// reference lookup), same physics and fleet shape as benchFleetStep.
BenchResult
benchFleetStepObjects(std::uint64_t target_server_minutes)
{
    const auto skus = makeFleetSkus();
    const auto server = power::ServerPowerModel::openComputeBlade();
    const reliability::LifetimeModel lifetime;
    const thermal::TwoPhaseImmersionCooling immersed(thermal::fc3284());
    const thermal::AirCooling air;
    const thermal::CoolingSystem *coolings[2] = {&immersed, &air};

    constexpr std::size_t kServers = kFleetServers;
    fleet::FleetState shape; // Reuse the fleet shape as plain config.
    populateFleet(shape, skus, kServers);

    std::vector<ScalarServer> servers;
    servers.reserve(kServers);
    for (std::size_t i = 0; i < kServers; ++i) {
        const fleet::SkuParams &p = skus[shape.skuIndex[i]];
        servers.push_back(ScalarServer{
            server.socketModel(),
            thermal::ThermalNode(p.rth, p.thermalCap, p.coolantRef),
            reliability::WearTracker(lifetime, p.designLife),
            coolings[shape.skuIndex[i]],
            p.level[shape.freqLevel[i]].frequency,
            shape.utilization[i],
            p.tMin,
        });
    }

    const std::uint64_t minutes =
        std::max<std::uint64_t>(1, target_server_minutes / kServers);
    const Years minute_years = fleet::secondsToYears(60.0);
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    for (std::uint64_t m = 0; m < minutes; ++m) {
        for (std::size_t i = 0; i < kServers; ++i) {
            ScalarServer &sv = servers[i];
            const power::VfCurve &vf = sv.socket.curve();
            const Volts volt = vf.voltageFor(sv.frequency);
            const power::OperatingPoint op{sv.frequency, volt,
                                           sv.utilization};
            const Watts dyn = sv.socket.dynamicPower(op);
            const Watts leak =
                sv.socket.leakagePower(sv.node.temperature());
            const Celsius ref =
                sv.cooling->referenceTemperature(dyn + leak);
            sv.node.step(60.0, dyn + leak, ref);
            reliability::StressCondition cond;
            cond.voltage = volt;
            cond.tjMax = sv.node.temperature();
            cond.tMin = sv.tMin;
            cond.freqRatio = sv.frequency / vf.nominalFrequency();
            cond.dutyCycle = sv.utilization;
            sv.tracker.accrue(cond, minute_years);
        }
    }
    const auto t1 = Clock::now();
    util::fatalIf(servers.front().node.temperature() <= 0.0,
                  "bench: object step went cold");
    return makeResult("fleet_step_objects", "server_minute",
                      minutes * kServers, elapsedSeconds(t0, t1),
                      allocsSoFar() - allocs0);
}

/// The sharded stepAll: the same arithmetic as benchFleetStep fanned
/// over a fixed 8-shard plan on a util::ShardRunner. The plan never
/// depends on the thread count, so the columns land bit-identical to
/// the serial bench for any --sim-threads; the fork-join itself is
/// allocation-free after warm-up (pool-resident shard job, no
/// packaged_task), which allocs/op pins.
BenchResult
benchFleetStepParallel(std::uint64_t target_server_minutes,
                       std::size_t threads)
{
    const auto skus = makeFleetSkus();
    constexpr std::size_t kServers = kFleetServers;
    fleet::FleetState state;
    populateFleet(state, skus, kServers);

    const util::ShardPlan plan = util::ShardPlan::even(kServers, 8);
    util::ShardRunner runner(threads);

    // Warm-up: sizes the thermal/wear scratch and spins the pool up.
    fleet::stepAll(state, skus, 60.0, plan, runner);

    const std::uint64_t minutes =
        std::max<std::uint64_t>(1, target_server_minutes / kServers);
    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    for (std::uint64_t m = 0; m < minutes; ++m)
        fleet::stepAll(state, skus, 60.0, plan, runner);
    const auto t1 = Clock::now();
    util::fatalIf(state.meanTj() <= 0.0,
                  "bench: parallel fleet step went cold");
    return makeResult("fleet_step_parallel", "server_minute",
                      minutes * kServers, elapsedSeconds(t0, t1),
                      allocsSoFar() - allocs0);
}

/// ROADMAP's fleet-scale target: a 100k-server datacenter (2500 racks
/// x 40) under per-server fidelity, minute loop sharded across
/// --sim-threads. Alloc accounting uses the same two-run differencing
/// as benchDatacenter, so the per-run ShardRunner/trace setup cancels
/// and allocs/op is the minute loop alone.
BenchResult
benchDatacenterLarge(double days, std::size_t sim_threads)
{
    cluster::RackConfig batch;
    batch.servers = 40;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.servers = 40;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    std::vector<cluster::RackConfig> racks;
    constexpr int kRacks = 2500;
    racks.reserve(kRacks);
    for (int i = 0; i < kRacks; ++i)
        racks.push_back(i % 3 == 2 ? latency : batch);
    // ~350 W per server: tight enough that capping and the PowerAware
    // backout fire, so the sharded minute loop runs every branch.
    cluster::DatacenterPowerSim dc(racks, 3.5e7, 1.3, 1.2);
    dc.enablePerServerFidelity(
        cluster::PerServerPhysics::openComputeImmersed());
    dc.setSimThreads(sim_threads);

    util::Rng rng_short(2021);
    const std::uint64_t allocs_short0 = allocsSoFar();
    dc.run(cluster::OverclockPolicy::PowerAware, rng_short, days);
    const std::uint64_t allocs_short = allocsSoFar() - allocs_short0;

    util::Rng rng_long(2021);
    const std::uint64_t allocs_long0 = allocsSoFar();
    const auto t0 = Clock::now();
    dc.run(cluster::OverclockPolicy::PowerAware, rng_long, 2.0 * days);
    const auto t1 = Clock::now();
    const std::uint64_t allocs_long = allocsSoFar() - allocs_long0;

    const auto minutes =
        static_cast<std::uint64_t>(2.0 * days * units::kMinutesPerDay);
    const auto extra_minutes =
        static_cast<std::uint64_t>(days * units::kMinutesPerDay);
    const std::uint64_t loop_allocs =
        allocs_long > allocs_short ? allocs_long - allocs_short : 0;
    auto r = makeResult("datacenter_minutes_large", "minute", minutes,
                        elapsedSeconds(t0, t1), 0);
    r.allocsPerOp = static_cast<double>(loop_allocs) /
                    static_cast<double>(extra_minutes);
    return r;
}

/// The black-box recorder's per-minute tick: poll eight scalar
/// channels and fold the sample row into every retention tier. This
/// is the whole steady-state cost a `--blackbox` run adds to the
/// datacenter minute loop, so it must stay allocation-free after the
/// first tick sizes the tier storage (allocs/op pins that contract;
/// see bench_obs_overhead for the fleet-scale variant).
BenchResult
benchFlightRecorderTick(std::uint64_t target_ticks)
{
    obs::FlightRecorder recorder(obs::FlightRecorder::Config::forCadence(60.0));
    std::vector<double> values(8, 0.0);
    for (std::size_t c = 0; c < values.size(); ++c)
        recorder.addChannel("chan" + std::to_string(c),
                            [&values, c] { return values[c]; });
    // First tick sizes the tier storage; keep it out of the window.
    recorder.tick(0.0);

    const std::uint64_t allocs0 = allocsSoFar();
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < target_ticks; ++i) {
        for (std::size_t c = 0; c < values.size(); ++c)
            values[c] = static_cast<double>(i + c);
        recorder.tick(60.0 * static_cast<double>(i + 1));
    }
    const auto t1 = Clock::now();
    util::fatalIf(recorder.ticks() != target_ticks + 1,
                  "bench: flight recorder dropped ticks");
    return makeResult("flight_recorder_tick", "tick", target_ticks,
                      elapsedSeconds(t0, t1), allocsSoFar() - allocs0);
}

// ---------------------------------------------------------------------
// JSON report.
// ---------------------------------------------------------------------

std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
writeReport(const std::vector<BenchResult> &results,
            const std::string &path, const std::string &meta_json)
{
    std::string out;
    out += "{\n  \"schema\": \"imsim.bench.hot_paths/1\",\n";
    out += "  \"meta\": " + meta_json + ",\n";
    out += "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        out += "    {\"name\": \"" + r.name + "\", ";
        out += "\"unit\": \"" + r.unit + "\", ";
        out += "\"iterations\": " + std::to_string(r.iterations) + ", ";
        out += "\"ns_per_op\": " + jsonNumber(r.nsPerOp) + ", ";
        out += "\"ops_per_sec\": " + jsonNumber(r.opsPerSec) + ", ";
        out += "\"allocs_per_op\": " + jsonNumber(r.allocsPerOp) + "}";
        out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";

    std::ofstream file(path);
    util::fatalIf(!file, "bench_hot_paths: cannot write " + path);
    file << out;
}

// ---------------------------------------------------------------------
// Baseline comparison (--baseline FILE): the CI/pre-commit gate.
// ---------------------------------------------------------------------

/**
 * Compare @p results against the JSON dump at @p baseline_path.
 * Timing regresses when ns/op exceeds the baseline by more than
 * @p tolerance (fractional); the allocation contract regresses when
 * allocs/op grows by more than 0.125 absolute — tight enough to catch
 * a fraction-of-an-alloc-per-op structural leak (the kind a container
 * churning every few ops produces) while forgiving the odd one-off
 * growth event amortized over a full run. The baseline's "meta" block
 * is provenance only and never compared.
 *
 * Every regression prints the benchmark's name and its percent delta
 * against the baseline, and @p failed collects "name (+pct)" summaries
 * so the caller's exit message names the offenders.
 *
 * @return the number of regressed benchmarks.
 */
int
checkAgainstBaseline(const std::vector<BenchResult> &results,
                     const std::string &baseline_path, double tolerance,
                     std::vector<std::string> &failed)
{
    std::ifstream in(baseline_path);
    util::fatalIf(!in, "bench_hot_paths: cannot read baseline " +
                           baseline_path);
    std::ostringstream text;
    text << in.rdbuf();
    const util::Json doc = util::Json::parse(text.str());
    util::fatalIf(!doc.isObject() || !doc.has("schema") ||
                      doc.at("schema").str() != "imsim.bench.hot_paths/1",
                  "bench_hot_paths: baseline is not an "
                  "imsim.bench.hot_paths/1 document");

    int regressions = 0;
    for (const auto &r : results) {
        const util::Json *base_row = nullptr;
        for (const auto &row : doc.at("benchmarks").array()) {
            if (row.at("name").str() == r.name) {
                base_row = &row;
                break;
            }
        }
        if (!base_row) {
            std::cout << "  [bench-check] " << r.name
                      << ": no baseline row (new benchmark), skipped\n";
            continue;
        }
        const double base_ns = base_row->at("ns_per_op").number();
        const double base_allocs =
            base_row->at("allocs_per_op").number();
        const double ratio = base_ns > 0.0 ? r.nsPerOp / base_ns : 1.0;
        const double pct = (ratio - 1.0) * 100.0;
        bool bad = false;
        if (ratio > 1.0 + tolerance) {
            std::cout << "  [bench-check] REGRESSION " << r.name << ": "
                      << jsonNumber(r.nsPerOp) << " ns/" << r.unit
                      << " vs baseline " << jsonNumber(base_ns) << " (+"
                      << jsonNumber(pct) << "%, tolerance +"
                      << jsonNumber(tolerance * 100.0) << "%)\n";
            failed.push_back(r.name + " (+" + jsonNumber(pct) +
                             "% ns/op)");
            bad = true;
        }
        if (r.allocsPerOp > base_allocs + 0.125) {
            std::cout << "  [bench-check] REGRESSION " << r.name << ": "
                      << jsonNumber(r.allocsPerOp) << " allocs/" << r.unit
                      << " vs baseline " << jsonNumber(base_allocs)
                      << " (+"
                      << jsonNumber(r.allocsPerOp - base_allocs)
                      << " allocs/op)\n";
            failed.push_back(r.name + " (+" +
                             jsonNumber(r.allocsPerOp - base_allocs) +
                             " allocs/op)");
            bad = true;
        }
        if (!bad) {
            std::cout << "  [bench-check] ok " << r.name << ": x"
                      << jsonNumber(ratio) << " ns/op, "
                      << jsonNumber(r.allocsPerOp) << " allocs/op\n";
        }
        regressions += bad ? 1 : 0;
    }
    return regressions;
}

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    const bool smoke = cli.has("--smoke");
    const double scale = cli.getDouble("--scale", smoke ? 0.002 : 1.0);
    const std::string out_path = cli.get("--out", "BENCH_hotpaths.json");
    const std::string baseline_path = cli.get("--baseline");
    const double tolerance = cli.getDouble("--tolerance", 0.30);
    // The sharded benches default to 8 threads (the acceptance shape),
    // overridable for single-core containers and thread sweeps.
    const std::size_t sim_threads =
        cli.has("--sim-threads") ? cli.simThreads() : 8;

    const auto scaled = [scale](double n) {
        const double v = n * scale;
        return static_cast<std::uint64_t>(v < 1.0 ? 1.0 : v);
    };

    std::vector<BenchResult> results;
    results.push_back(benchKernelPeriodic(scaled(4e6)));
    results.push_back(benchKernelOneShot(scaled(4e6)));
    results.push_back(benchQueueing(scaled(1e6)));
    results.push_back(
        benchDatacenter(std::max(0.05, 30.0 * scale)));
    results.push_back(benchFleetStep(scaled(8e6)));
    results.push_back(benchFleetStepObjects(scaled(8e6)));
    results.push_back(benchFleetStepParallel(scaled(8e6), sim_threads));
    results.push_back(benchDatacenterLarge(std::max(0.02, 0.25 * scale),
                                           sim_threads));
    results.push_back(benchFlightRecorderTick(scaled(2e6)));

    std::cout << "Hot-path throughput (allocs/op counts steady-state"
                 " heap allocations):\n";
    for (const auto &r : results) {
        std::cout << "  " << r.name << ": "
                  << jsonNumber(r.opsPerSec) << " " << r.unit << "s/s ("
                  << jsonNumber(r.nsPerOp) << " ns/" << r.unit << ", "
                  << jsonNumber(r.allocsPerOp) << " allocs/" << r.unit
                  << ")\n";
    }
    const auto findResult =
        [&results](const char *name) -> const BenchResult * {
        for (const auto &r : results) {
            if (r.name == name)
                return &r;
        }
        return nullptr;
    };
    // The batched kernels' reason to exist: report the speedup over the
    // per-object loop they replace (DESIGN.md asks for >= 2x), and the
    // sharded step's scaling on top of it (>= 3x at 8 threads on
    // multi-core hosts; bounded by the machine's cores).
    const BenchResult *batched = findResult("fleet_step");
    const BenchResult *objects = findResult("fleet_step_objects");
    const BenchResult *parallel = findResult("fleet_step_parallel");
    if (batched && objects && batched->nsPerOp > 0.0) {
        std::cout << "  fleet_step speedup vs per-object loop: x"
                  << jsonNumber(objects->nsPerOp / batched->nsPerOp)
                  << "\n";
    }
    if (batched && parallel && parallel->nsPerOp > 0.0) {
        std::cout << "  fleet_step_parallel speedup vs serial ("
                  << sim_threads << " threads): x"
                  << jsonNumber(batched->nsPerOp / parallel->nsPerOp)
                  << "\n";
    }
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, 0, 1);
    writeReport(results, out_path, manifest.toJsonObject());
    std::cout << "Wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        std::cout << "Comparing against " << baseline_path
                  << " (tolerance x" << jsonNumber(1.0 + tolerance)
                  << "):\n";
        std::vector<std::string> failed;
        const int regressions = checkAgainstBaseline(
            results, baseline_path, tolerance, failed);
        if (regressions > 0) {
            std::cout << regressions << " hot path(s) regressed:";
            for (std::size_t i = 0; i < failed.size(); ++i)
                std::cout << (i == 0 ? " " : ", ") << failed[i];
            std::cout << "\n";
            return 1;
        }
        std::cout << "All hot paths within tolerance.\n";
    }
    return 0;
}
