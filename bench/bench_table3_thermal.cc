/**
 * @file
 * Regenerates Table III (maximum attained frequency and power for the
 * Skylake 8168/8180 under air and FC-3284) and the Sec. IV per-server
 * power-savings decomposition (2 x 11 W static + 42 W fans + ~118 W PUE
 * = ~182 W).
 */

#include <iostream>

#include "hw/turbo.hh"
#include "power/facility.hh"
#include "power/server_power.hh"
#include "power/socket_power.hh"
#include "thermal/cooling.hh"
#include "util/table.hh"

using namespace imsim;

namespace {

struct Platform
{
    const char *name;
    hw::TurboGovernor governor;
    power::SocketPowerModel socket;
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling immersion;
    const char *becLocation;
    int cores;
};

void
printPlatform(util::TableWriter &table, const Platform &platform)
{
    const auto report = [&](const thermal::CoolingSystem &cooling,
                            const char *label, const char *bec) {
        const GHz turbo = platform.governor.effectiveFrequency(
            platform.socket, cooling, platform.cores);
        const auto sol = platform.socket.solve(
            {turbo, platform.socket.curve().voltageFor(turbo), 1.0},
            cooling);
        table.addRow({platform.name, label, util::fmt(sol.tj, 0) + " C",
                      util::fmt(sol.total, 1) + " W",
                      util::fmt(turbo, 1) + " GHz", bec,
                      util::fmt(cooling.thermalResistance(), 2) + " C/W"});
    };
    report(platform.air, "Air", "N/A");
    report(platform.immersion, "2PIC", platform.becLocation);
}

} // namespace

int
main()
{
    util::printHeading(std::cout,
                       "Table III: max turbo and power, air vs FC-3284");
    util::TableWriter table({"Platform", "Cooling", "Tj max", "Power",
                             "Max turbo", "BEC location", "Rth"});

    Platform p8168{
        "Skylake 8168 (24c)",
        hw::TurboGovernor::skylake8168(),
        power::SocketPowerModel::skylakeServer(3.1),
        thermal::AirCooling(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.22),
        thermal::TwoPhaseImmersionCooling(
            thermal::fc3284(),
            {thermal::BoilingInterface::Coating::CopperPlate}),
        "Copper plate",
        24};
    printPlatform(table, p8168);

    Platform p8180{
        "Skylake 8180 (28c)",
        hw::TurboGovernor::skylake8180(),
        power::SocketPowerModel::skylakeServer(2.6),
        thermal::AirCooling(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21),
        thermal::TwoPhaseImmersionCooling(
            thermal::fc3284(),
            {thermal::BoilingInterface::Coating::DirectIhs}),
        "CPU IHS",
        28};
    printPlatform(table, p8180);
    table.print(std::cout);
    std::cout << "Paper: 8168 air 92 C/3.1 GHz vs 2PIC 75 C/3.2 GHz;"
                 " 8180 air 90 C/2.6 GHz vs 2PIC 68 C/2.7 GHz,\nboth at"
                 " ~204.5 W (one extra 100 MHz bin from lower leakage).\n";

    util::printHeading(std::cout,
                       "Sec. IV: per-server power savings of 2PIC");
    const auto savings = power::immersionSavings(700.0, 42.0, 11.0, 2);
    util::TableWriter sav({"Component", "Saving [W]"});
    sav.addRow({"Static power (2 sockets x ~11 W)",
                util::fmt(savings.staticTotal, 0)});
    sav.addRow({"Server fans", util::fmt(savings.fans, 0)});
    sav.addRow({"Facility PUE overhead", util::fmt(savings.pueOverhead, 0)});
    sav.addRow({"Total", util::fmt(savings.total, 0)});
    sav.print(std::cout);
    std::cout << "Paper: ~182 W per 700 W server (2x11 + 42 + 118).\n";

    util::printHeading(std::cout,
                       "Sec. III: Open Compute blade power budget");
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    const auto breakdown = server.compute({2.6, 0.90, 1.0}, air);
    util::TableWriter budget({"Component", "Power [W]"});
    budget.addRow({"2 x CPU socket", util::fmt(breakdown.sockets, 0)});
    budget.addRow({"24 x DDR4 DIMM", util::fmt(breakdown.memory, 0)});
    budget.addRow({"Motherboard+FPGA+storage", util::fmt(breakdown.other, 0)});
    budget.addRow({"Fans", util::fmt(breakdown.fans, 0)});
    budget.addRow({"Total", util::fmt(breakdown.total, 0)});
    budget.print(std::cout);
    std::cout << "Paper: 410 + 120 + 128 + 42 = 700 W.\n";
    return 0;
}
