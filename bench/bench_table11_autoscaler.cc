/**
 * @file
 * Regenerates Table XI and Fig. 16: the full auto-scaler experiment.
 * One server VM starts; client load climbs 500 -> 4000 QPS in steps of
 * 500 every 5 minutes. Baseline (scale-out only), OC-E (overclock while
 * scaling out), and OC-A (overclock before scaling out) are compared on
 * normalized P95/average latency, peak VM count, VM-hours, and per-VM
 * power. An ablation replaces Eq. 1's minimum-sufficient-frequency
 * selection with "always jump to maximum" to quantify what the model
 * saves in power.
 */

#include <iostream>

#include "autoscale/experiment.hh"
#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace imsim;

int
main(int argc, char **argv)
{
    // Flags: --seed N (default 42), --step SECONDS (default 300),
    // --skip-downramp (omit the down-ramp extension section),
    // --jobs N (default hardware concurrency), --report FILE,
    // --trace FILE (Chrome trace JSON), --telemetry FILE (merged CSV),
    // --progress [FILE] (stderr status line + optional JSONL
    // heartbeat), --profile [FILE] (wall-clock scope table + optional
    // mergeable JSON dump).
    const util::Cli cli(argc, argv);
    autoscale::ExperimentParams params;
    params.seed = static_cast<std::uint64_t>(cli.getInt("--seed", 42));
    params.stepDuration = cli.getDouble("--step", 300.0);
    obs::maybeEnableProfiler(cli);
    const auto progress = exp::progressFromCli(cli, "table11_autoscaler");

    util::printHeading(std::cout,
                       "Table XI: full auto-scaler experiment");
    std::cout << "Client-Server M/G/k; load 500 -> 4000 QPS in 500-QPS"
                 " steps every 5 minutes;\nscale-out 60 s, thresholds"
                 " 50/20% (3-min window), scale-up/down 40/20%\n(30-s"
                 " window), 8 frequency bins in [3.4, 4.1] GHz.\n\n";

    // Four independent full runs (Baseline, OC-E, OC-A, plus the
    // ablation's second OC-E run) fanned across the experiment engine;
    // each seeds its own simulation from params.seed.
    const exp::SweepRunner runner({cli.jobs(), params.seed,
                                   progress.get()});
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, params.seed, runner.jobs());
    const std::vector<autoscale::Policy> runs{
        autoscale::Policy::Baseline, autoscale::Policy::OcE,
        autoscale::Policy::OcA, autoscale::Policy::OcE};
    // With --trace/--telemetry each run fills its own ObsCapture slot
    // (thread-compatible: one capture per point); the captures are
    // merged in point order below, so the output is identical for any
    // --jobs value.
    const bool capture_obs =
        obs::traceRequested(cli) || obs::telemetryRequested(cli);
    std::vector<autoscale::ObsCapture> captures(
        capture_obs ? runs.size() : 0);
    const auto outcomes = runner.map<autoscale::AutoScaleOutcome>(
        runs.size(), [&](std::size_t i, util::Rng &) {
            autoscale::ExperimentParams point_params = params;
            if (capture_obs)
                point_params.obs = &captures[i];
            return autoscale::runFullExperiment(runs[i], point_params);
        });
    // Timing of the headline sweep, before the down-ramp map reuses
    // (and resets) the monitor.
    exp::RunTiming sweep_timing;
    if (progress)
        sweep_timing = progress->runTiming();
    const auto &baseline = outcomes[0];
    const auto &oce = outcomes[1];
    const auto &oca = outcomes[2];

    util::TableWriter table({"Config", "Norm P95 Lat", "Norm Avg Lat",
                             "Max VMs", "VM x hours", "Avg VM power",
                             "Avg freq"});
    const auto add_row = [&](const autoscale::AutoScaleOutcome &outcome) {
        table.addRow(
            {autoscale::policyName(outcome.policy),
             util::fmt(outcome.p95Latency / baseline.p95Latency, 2),
             util::fmt(outcome.meanLatency / baseline.meanLatency, 2),
             util::fmt(outcome.maxVms, 0), util::fmt(outcome.vmHours, 2),
             util::fmtPercent(outcome.avgPowerPerVm /
                                  baseline.avgPowerPerVm -
                              1.0),
             util::fmt(outcome.avgFrequency, 2) + " GHz"});
    };
    add_row(baseline);
    add_row(oce);
    add_row(oca);
    table.print(std::cout);
    std::cout << "Paper: P95 0.58 (OC-E) / 0.46 (OC-A); avg 0.27 / 0.23;"
                 " max VMs 6/6/5;\nVM x hours 2.20 / 2.17 / 1.95; power"
                 " +7% (OC-E) / +27% (OC-A).\n";

    util::printHeading(std::cout,
                       "Fig. 16: utilization / VM / frequency traces "
                       "(1-minute samples)");
    util::TableWriter trace({"t [min]", "Base util", "Base VMs",
                             "OC-E util", "OC-E VMs", "OC-A util",
                             "OC-A VMs", "OC-A freq"});
    const auto sample = [](const autoscale::AutoScaleOutcome &outcome,
                           Seconds t) {
        const autoscale::TracePoint *best = nullptr;
        for (const auto &point : outcome.trace) {
            if (point.time <= t)
                best = &point;
            else
                break;
        }
        return best;
    };
    for (int minute = 1; minute <= 40; ++minute) {
        const Seconds t = minute * 60.0;
        const auto *b = sample(baseline, t);
        const auto *e = sample(oce, t);
        const auto *a = sample(oca, t);
        if (!b || !e || !a)
            continue;
        trace.addRow({util::fmt(minute, 0),
                      util::fmt(b->util30 * 100.0, 0) + "%",
                      util::fmt(b->vms, 0),
                      util::fmt(e->util30 * 100.0, 0) + "%",
                      util::fmt(e->vms, 0),
                      util::fmt(a->util30 * 100.0, 0) + "%",
                      util::fmt(a->vms, 0),
                      util::fmt(a->frequency, 2)});
    }
    trace.print(std::cout);
    std::cout << "Paper shape: the overclocked policies' utilization"
                 " never reaches the baseline's\n~70% peaks and recovers"
                 " faster after each step; OC-A postpones scale-outs and"
                 "\nfinishes with one fewer VM.\n";

    util::printHeading(
        std::cout,
        "Ablation: Eq. 1 minimum-sufficient frequency vs always-max");
    // Always-max is exactly OC-E with the scale-up threshold at 0 —
    // approximate it by comparing OC-A's average frequency/power against
    // pinning the fleet at 4.1 GHz whenever load exists.
    const auto &oce_always = outcomes[3];
    util::TableWriter ablation({"Policy", "Avg freq", "Avg VM power",
                                "Norm P95"});
    ablation.addRow({"OC-A (Eq. 1 selection)",
                     util::fmt(oca.avgFrequency, 2) + " GHz",
                     util::fmt(oca.avgPowerPerVm, 1) + " W",
                     util::fmt(oca.p95Latency / baseline.p95Latency, 2)});
    ablation.addRow({"OC-E (max only while scaling)",
                     util::fmt(oce_always.avgFrequency, 2) + " GHz",
                     util::fmt(oce_always.avgPowerPerVm, 1) + " W",
                     util::fmt(oce_always.p95Latency /
                                   baseline.p95Latency, 2)});
    ablation.addRow({"Baseline", util::fmt(baseline.avgFrequency, 2) +
                                     " GHz",
                     util::fmt(baseline.avgPowerPerVm, 1) + " W", "1.00"});
    ablation.print(std::cout);

    if (!cli.has("--skip-downramp")) {
        util::printHeading(
            std::cout,
            "Extension: down-ramp (scale-in and scale-down behaviour)");
        const std::vector<double> down{3000.0, 2000.0, 1000.0, 400.0,
                                       200.0};
        util::TableWriter ramp({"Policy", "Final VMs", "Final freq",
                                "Scale-ins", "VM x hours"});
        const std::vector<autoscale::Policy> ramp_runs{
            autoscale::Policy::Baseline, autoscale::Policy::OcA};
        const auto ramp_outcomes =
            runner.map<autoscale::AutoScaleOutcome>(
                ramp_runs.size(), [&](std::size_t i, util::Rng &) {
                    return autoscale::runCustomExperiment(
                        ramp_runs[i], down, 5, params);
                });
        for (const auto &outcome : ramp_outcomes) {
            const auto policy = outcome.policy;
            const auto &last = outcome.trace.back();
            std::size_t scale_ins = 0;
            for (std::size_t i = 1; i < outcome.trace.size(); ++i)
                if (outcome.trace[i].vms < outcome.trace[i - 1].vms)
                    ++scale_ins;
            ramp.addRow({autoscale::policyName(policy),
                         util::fmt(last.vms, 0),
                         util::fmt(last.frequency, 2) + " GHz",
                         util::fmt(scale_ins, 0),
                         util::fmt(outcome.vmHours, 2)});
        }
        ramp.print(std::cout);
        std::cout << "On a falling load both policies shed VMs; OC-A"
                     " additionally relaxes its\nfrequency back to the"
                     " base clock before releasing capacity.\n";
    }

    exp::RunReport report("table11_autoscaler");
    report.setMeta(manifest.entries());
    if (progress)
        report.setTiming(sweep_timing);
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &outcome = outcomes[i];
        exp::RunRecord record;
        record.params = {{"policy", autoscale::policyName(outcome.policy)}};
        record.metrics.set("norm_p95",
                           outcome.p95Latency / baseline.p95Latency);
        record.metrics.set("norm_mean",
                           outcome.meanLatency / baseline.meanLatency);
        record.metrics.set("max_vms",
                           static_cast<double>(outcome.maxVms));
        record.metrics.set("vm_hours", outcome.vmHours);
        record.metrics.set("avg_vm_power_w", outcome.avgPowerPerVm);
        record.metrics.set("avg_freq_ghz", outcome.avgFrequency);
        report.add(std::move(record));
    }
    exp::maybeWriteReport(cli, report, std::cout);

    if (capture_obs) {
        obs::EventTracer merged_trace;
        obs::TelemetryMerger telemetry(captures.size());
        for (std::size_t i = 0; i < captures.size(); ++i) {
            const std::string label = autoscale::policyName(runs[i]) +
                                      "#" + std::to_string(i);
            merged_trace.nameTrack(static_cast<std::uint32_t>(i), label);
            merged_trace.append(captures[i].tracer,
                                static_cast<std::uint32_t>(i));
            telemetry.add(i, label, captures[i].telemetry);
        }
        obs::maybeWriteTrace(cli, merged_trace, manifest, std::cout);
        obs::maybeWriteTelemetry(cli, telemetry, manifest, std::cout);
    }
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
