/**
 * @file
 * Google-benchmark microbenchmarks of the observability layer's
 * overhead contract: a disabled tracer / unattached hook must cost a
 * single branch on the kernel's hot path, and enabled instrumentation
 * must stay cheap enough to leave on during experiments.
 *
 * Pairs to compare:
 *  - BM_KernelLoopBare vs BM_KernelLoopHooksOff vs BM_KernelLoopTraced;
 *  - BM_TracerDisabled vs BM_TracerEnabled (per-emit cost);
 *  - BM_CounterInc / BM_GaugePoll (registry primitives);
 *  - BM_TraceScopeDisabled vs BM_TraceScopeEnabled;
 *  - BM_ProfScopeDisabled vs BM_ProfScopeEnabled (wall-clock profiler).
 */

#include <benchmark/benchmark.h>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/simulation.hh"

using namespace imsim;

namespace {

/** The kernel loop with no hooks installed (the baseline). */
void
BM_KernelLoopBare(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopBare)->Arg(10000);

/**
 * The kernel loop with hooks attached but the tracer disabled: every
 * hook call returns after the tracer's single-branch fast path.
 */
void
BM_KernelLoopHooksOff(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        obs::EventTracer tracer; // Never enabled.
        class NullHooks : public sim::KernelHooks
        {
        } hooks;
        sim.setHooks(&hooks);
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopHooksOff)->Arg(10000);

/** The kernel loop under a live KernelTracer (full event capture). */
void
BM_KernelLoopTraced(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        obs::EventTracer tracer;
        obs::KernelTracer kernel_tracer(tracer, sim);
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopTraced)->Arg(10000);

/** Per-emit cost of a disabled tracer (the always-compiled-in path). */
void
BM_TracerDisabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    for (auto _ : state) {
        tracer.instant("tick", "bench");
        tracer.counter("value", 1.0);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracerDisabled);

/** Per-emit cost of an enabled tracer. */
void
BM_TracerEnabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    for (auto _ : state) {
        t += 1.0;
        tracer.instant("tick", "bench");
        tracer.counter("value", t);
        if (tracer.size() > 1u << 20)
            tracer.clear(); // Bound memory, off the measured path mostly.
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracerEnabled);

/** Counter increment through the registry reference. */
void
BM_CounterInc(benchmark::State &state)
{
    obs::MetricRegistry registry;
    obs::Counter &events = registry.counter("bench.events");
    for (auto _ : state) {
        events.inc();
        benchmark::DoNotOptimize(events.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

/** Polling a provider-backed gauge (what the sampler does per column). */
void
BM_GaugePoll(benchmark::State &state)
{
    obs::MetricRegistry registry;
    double model_state = 3.4;
    obs::Gauge &freq = registry.registerGauge(
        "bench.freq", [&model_state] { return model_state; });
    for (auto _ : state) {
        model_state += 1e-9;
        benchmark::DoNotOptimize(freq.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugePoll);

/** RAII scope on a disabled tracer: one branch in, nothing out. */
void
BM_TraceScopeDisabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    for (auto _ : state) {
        obs::TraceScope scope(tracer, "work", "bench");
        benchmark::DoNotOptimize(&scope);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

/** RAII scope on an enabled tracer: one complete event per scope. */
void
BM_TraceScopeEnabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    for (auto _ : state) {
        t += 1.0;
        {
            obs::TraceScope scope(tracer, "work", "bench");
            benchmark::DoNotOptimize(&scope);
        }
        if (tracer.size() > 1u << 20)
            tracer.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

/**
 * Profiler scope with the global flag off: the cost every instrumented
 * hot path (thermal step, power allocate, kernel minute loop) pays on
 * ordinary runs. The contract is a single relaxed atomic load and
 * branch — a few ns at most.
 */
void
BM_ProfScopeDisabled(benchmark::State &state)
{
    obs::Profiler::setEnabled(false);
    for (auto _ : state) {
        obs::ProfScope scope("bench.disabled");
        benchmark::DoNotOptimize(&scope);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeDisabled);

/** Profiler scope with the flag on: two clock reads + tree walk. */
void
BM_ProfScopeEnabled(benchmark::State &state)
{
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    for (auto _ : state) {
        obs::ProfScope scope("bench.enabled");
        benchmark::DoNotOptimize(&scope);
    }
    obs::Profiler::setEnabled(false);
    obs::Profiler::reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeEnabled);

} // namespace

BENCHMARK_MAIN();
