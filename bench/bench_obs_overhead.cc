/**
 * @file
 * Google-benchmark microbenchmarks of the observability layer's
 * overhead contract: a disabled tracer / unattached hook must cost a
 * single branch on the kernel's hot path, and enabled instrumentation
 * must stay cheap enough to leave on during experiments.
 *
 * Pairs to compare:
 *  - BM_KernelLoopBare vs BM_KernelLoopHooksOff vs BM_KernelLoopTraced;
 *  - BM_TracerDisabled vs BM_TracerEnabled (per-emit cost);
 *  - BM_CounterInc / BM_GaugePoll (registry primitives);
 *  - BM_TraceScopeDisabled vs BM_TraceScopeEnabled;
 *  - BM_ProfScopeDisabled vs BM_ProfScopeEnabled (wall-clock profiler);
 *  - BM_FleetAggregatorObserve / ...Recorded: the per-tick columnar
 *    fleet reduction, with per-server cost (ns_per_server) and the
 *    allocation contract (allocs_per_op must be 0 in steady state —
 *    recording appends one row per tick, the documented exception);
 *  - BM_FleetSnapshot (cross-thread sample copy), BM_WatchdogEvaluate
 *    (per-rule poll), BM_QuantileSketchAdd / BM_SketchMergedQuantile
 *    (the sketch primitives the aggregates are made of);
 *  - BM_FlightRecorderTick (the black-box record tick behind a
 *    16384-server fleet reduction), BM_FlightRecorderTickOnly (the
 *    bare multi-tier fold), BM_FlightRecorderDump (serializing a full
 *    recorder) — steady-state ticks must be 0 allocs/op.
 *
 * Like bench_hot_paths, the binary instruments global operator new so
 * the fleet-aggregation cases can report allocs_per_op directly.
 * `--check` skips the timing runs and enforces the flight recorder's
 * allocation contract directly (exit 1 on any steady-state alloc),
 * which is how scripts/bench.sh gates it in CI.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "obs/blackbox.hh"
#include "obs/fleet_agg.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "obs/watchdog.hh"
#include "sim/simulation.hh"
#include "util/stats.hh"

namespace {

/// Heap allocations observed process-wide since start-up.
std::atomic<std::uint64_t> allocCalls{0};

std::uint64_t
allocsSoFar()
{
    return allocCalls.load(std::memory_order_relaxed);
}

} // namespace

// These replacements route every global new through malloc, so free()
// inside operator delete is the matching deallocator — but GCC cannot
// see that when it inlines operator delete into a caller that
// allocated via operator new, and flags a false-positive
// -Wmismatched-new-delete (fatal under the -Werror sanitizer builds).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    allocCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace imsim;

namespace {

/** The kernel loop with no hooks installed (the baseline). */
void
BM_KernelLoopBare(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopBare)->Arg(10000);

/**
 * The kernel loop with hooks attached but the tracer disabled: every
 * hook call returns after the tracer's single-branch fast path.
 */
void
BM_KernelLoopHooksOff(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        obs::EventTracer tracer; // Never enabled.
        class NullHooks : public sim::KernelHooks
        {
        } hooks;
        sim.setHooks(&hooks);
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopHooksOff)->Arg(10000);

/** The kernel loop under a live KernelTracer (full event capture). */
void
BM_KernelLoopTraced(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        obs::EventTracer tracer;
        obs::KernelTracer kernel_tracer(tracer, sim);
        int counter = 0;
        for (int i = 0; i < state.range(0); ++i) {
            sim.at(static_cast<double>(i % 97),
                   [&counter] { ++counter; });
        }
        sim.run();
        benchmark::DoNotOptimize(counter);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelLoopTraced)->Arg(10000);

/** Per-emit cost of a disabled tracer (the always-compiled-in path). */
void
BM_TracerDisabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    for (auto _ : state) {
        tracer.instant("tick", "bench");
        tracer.counter("value", 1.0);
        benchmark::DoNotOptimize(tracer.size());
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracerDisabled);

/** Per-emit cost of an enabled tracer. */
void
BM_TracerEnabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    for (auto _ : state) {
        t += 1.0;
        tracer.instant("tick", "bench");
        tracer.counter("value", t);
        if (tracer.size() > 1u << 20)
            tracer.clear(); // Bound memory, off the measured path mostly.
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracerEnabled);

/** Counter increment through the registry reference. */
void
BM_CounterInc(benchmark::State &state)
{
    obs::MetricRegistry registry;
    obs::Counter &events = registry.counter("bench.events");
    for (auto _ : state) {
        events.inc();
        benchmark::DoNotOptimize(events.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

/** Polling a provider-backed gauge (what the sampler does per column). */
void
BM_GaugePoll(benchmark::State &state)
{
    obs::MetricRegistry registry;
    double model_state = 3.4;
    obs::Gauge &freq = registry.registerGauge(
        "bench.freq", [&model_state] { return model_state; });
    for (auto _ : state) {
        model_state += 1e-9;
        benchmark::DoNotOptimize(freq.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugePoll);

/** RAII scope on a disabled tracer: one branch in, nothing out. */
void
BM_TraceScopeDisabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    for (auto _ : state) {
        obs::TraceScope scope(tracer, "work", "bench");
        benchmark::DoNotOptimize(&scope);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

/** RAII scope on an enabled tracer: one complete event per scope. */
void
BM_TraceScopeEnabled(benchmark::State &state)
{
    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    for (auto _ : state) {
        t += 1.0;
        {
            obs::TraceScope scope(tracer, "work", "bench");
            benchmark::DoNotOptimize(&scope);
        }
        if (tracer.size() > 1u << 20)
            tracer.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

/**
 * Profiler scope with the global flag off: the cost every instrumented
 * hot path (thermal step, power allocate, kernel minute loop) pays on
 * ordinary runs. The contract is a single relaxed atomic load and
 * branch — a few ns at most.
 */
void
BM_ProfScopeDisabled(benchmark::State &state)
{
    obs::Profiler::setEnabled(false);
    for (auto _ : state) {
        obs::ProfScope scope("bench.disabled");
        benchmark::DoNotOptimize(&scope);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeDisabled);

/** Profiler scope with the flag on: two clock reads + tree walk. */
void
BM_ProfScopeEnabled(benchmark::State &state)
{
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    for (auto _ : state) {
        obs::ProfScope scope("bench.enabled");
        benchmark::DoNotOptimize(&scope);
    }
    obs::Profiler::setEnabled(false);
    obs::Profiler::reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeEnabled);

/**
 * Synthetic fleet columns with a plausible mixed-SKU population:
 * deterministic values (no RNG on the measured path) spanning each
 * channel's sketch range.
 */
struct SyntheticFleet
{
    std::vector<std::uint32_t> sku;
    std::vector<double> util;
    std::vector<double> power;
    std::vector<double> tj;
    std::vector<double> wear;

    explicit SyntheticFleet(std::size_t count, std::size_t skus)
    {
        sku.resize(count);
        util.resize(count);
        power.resize(count);
        tj.resize(count);
        wear.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
            sku[i] = static_cast<std::uint32_t>(i % skus);
            util[i] = static_cast<double>(i % 101) / 100.0;
            power[i] = 180.0 + static_cast<double>(i % 241);
            tj[i] = 45.0 + static_cast<double>(i % 56);
            wear[i] = 1e-6 * static_cast<double>(i);
        }
    }

    obs::FleetView view() const
    {
        obs::FleetView v;
        v.count = sku.size();
        v.sku = sku.data();
        v.utilization = util.data();
        v.totalPower = power.data();
        v.tj = tj.data();
        v.wearConsumed = wear.data();
        return v;
    }

    /** Advance the columns between ticks (off the measured path). */
    void mutate(std::size_t tick)
    {
        const std::size_t n = sku.size();
        for (std::size_t i = 0; i < n; ++i) {
            util[i] = static_cast<double>((i + tick) % 101) / 100.0;
            tj[i] = 45.0 + static_cast<double>((i + 7 * tick) % 56);
            wear[i] += 1e-9;
        }
    }
};

/**
 * The tentpole budget: one columnar fleet reduction per tick. Reported
 * per-server (ns_per_server) because the contract is "a few ns per
 * server-minute"; allocs_per_op must be 0 once the scratch is sized.
 */
void
BM_FleetAggregatorObserve(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    SyntheticFleet fleet(count, 3);
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 3;
    cfg.record = false;    // Pure reduction; recording measured below.
    cfg.cumulative = true;
    obs::FleetAggregator agg(cfg);
    agg.observe(0.0, fleet.view(), 60.0); // Size the wear scratch.

    std::size_t tick = 0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fleet.mutate(++tick);
        state.ResumeTiming();
        const std::uint64_t before = allocsSoFar();
        agg.observe(static_cast<double>(tick) * 60.0, fleet.view(), 60.0);
        allocs += allocsSoFar() - before;
        benchmark::DoNotOptimize(agg.latest().fleetPower);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(count));
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(allocs),
        benchmark::Counter::kAvgIterations);
    state.counters["ns_per_server"] = benchmark::Counter(
        static_cast<double>(count) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FleetAggregatorObserve)->Arg(1024)->Arg(16384);

/** The same reduction with per-tick TimeSeries recording on. */
void
BM_FleetAggregatorObserveRecorded(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    SyntheticFleet fleet(count, 3);
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 3;
    cfg.record = true;
    obs::FleetAggregator agg(cfg);
    agg.observe(0.0, fleet.view(), 60.0);

    std::size_t tick = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fleet.mutate(++tick);
        state.ResumeTiming();
        agg.observe(static_cast<double>(tick) * 60.0, fleet.view(), 60.0);
        benchmark::DoNotOptimize(agg.series().rows());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(count));
    state.counters["ns_per_server"] = benchmark::Counter(
        static_cast<double>(count) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FleetAggregatorObserveRecorded)->Arg(16384);

/** Cross-thread snapshot of the published sample (lock + copy). */
void
BM_FleetSnapshot(benchmark::State &state)
{
    SyntheticFleet fleet(1024, 3);
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 3;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    agg.observe(0.0, fleet.view(), 60.0);
    obs::FleetSample sample = agg.snapshot(); // Size the copy target.
    for (auto _ : state) {
        sample = agg.snapshot();
        benchmark::DoNotOptimize(sample.units);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetSnapshot);

/** Per-poll cost of the watchdog rule engine (nothing firing). */
void
BM_WatchdogEvaluate(benchmark::State &state)
{
    obs::Watchdog watchdog;
    double signal = 0.5;
    for (int i = 0; i < 5; ++i) {
        obs::WatchdogRule rule;
        rule.name = "rule" + std::to_string(i);
        rule.signal = [&signal] { return signal; };
        rule.fireThreshold = 1.0;
        rule.clearThreshold = 0.8;
        watchdog.addRule(rule);
    }
    Seconds t = 0.0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        t += 1.0;
        const std::uint64_t before = allocsSoFar();
        watchdog.evaluate(t);
        allocs += allocsSoFar() - before;
        benchmark::DoNotOptimize(watchdog.firingCount());
    }
    state.SetItemsProcessed(state.iterations() * 5);
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(allocs),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WatchdogEvaluate);

/** The sketch insert every per-unit sample pays. */
void
BM_QuantileSketchAdd(benchmark::State &state)
{
    util::QuantileSketch sketch = util::QuantileSketch::linear(0.0, 150.0,
                                                               128);
    double x = 0.0;
    for (auto _ : state) {
        x += 0.1;
        if (x > 150.0)
            x = 0.0;
        sketch.add(x);
        benchmark::DoNotOptimize(sketch.count());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileSketchAdd);

/**
 * The flight-recorder tick behind a realistic fleet pipeline: a
 * 16384-server columnar reduction publishes the sample, then the
 * recorder folds its six fleet channels into three retention tiers.
 * Only the recorder's tick is on the measured path; the contract is
 * 0 allocs/op in steady state (all tier storage pre-sized).
 */
void
BM_FlightRecorderTick(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    SyntheticFleet fleet(count, 3);
    obs::FleetAggregator::Config agg_cfg;
    agg_cfg.skuCount = 3;
    agg_cfg.record = false;
    agg_cfg.cumulative = false;
    obs::FleetBlackbox box(agg_cfg, obs::FlightRecorder::Config{},
                           /*fire_power_w=*/1e12,
                           /*clear_power_w=*/9e11);
    // Warm up: size the wear scratch, seal the channels, size tiers.
    box.aggregator.observe(0.0, fleet.view(), 60.0);
    box.recorder.tick(0.0);

    std::size_t tick = 0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fleet.mutate(++tick);
        const Seconds t = static_cast<double>(tick) * 60.0;
        box.aggregator.observe(t, fleet.view(), 60.0);
        state.ResumeTiming();
        const std::uint64_t before = allocsSoFar();
        box.recorder.tick(t);
        allocs += allocsSoFar() - before;
        benchmark::DoNotOptimize(box.recorder.ticks());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(allocs),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FlightRecorderTick)->Arg(16384);

/** The bare fold: eight scalar channels into three tiers, no fleet. */
void
BM_FlightRecorderTickOnly(benchmark::State &state)
{
    obs::FlightRecorder recorder;
    std::vector<double> values(8, 0.0);
    for (std::size_t c = 0; c < values.size(); ++c) {
        recorder.addChannel("chan" + std::to_string(c),
                            [&values, c] { return values[c]; });
    }
    recorder.tick(0.0);
    std::size_t tick = 0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        ++tick;
        for (std::size_t c = 0; c < values.size(); ++c)
            values[c] = static_cast<double>((tick + c) % 97);
        const std::uint64_t before = allocsSoFar();
        recorder.tick(static_cast<double>(tick) * 60.0);
        allocs += allocsSoFar() - before;
        benchmark::DoNotOptimize(recorder.ticks());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(allocs),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FlightRecorderTickOnly);

/** Serializing a recorder whose finest tier is full (the dump cost). */
void
BM_FlightRecorderDump(benchmark::State &state)
{
    obs::FlightRecorder recorder;
    std::vector<double> values(8, 0.0);
    for (std::size_t c = 0; c < values.size(); ++c) {
        recorder.addChannel("chan" + std::to_string(c),
                            [&values, c] { return values[c]; });
    }
    for (std::size_t tick = 0; tick <= 3600; ++tick) {
        for (std::size_t c = 0; c < values.size(); ++c)
            values[c] = static_cast<double>((tick + c) % 97);
        recorder.tick(static_cast<double>(tick) * 60.0);
    }
    for (auto _ : state) {
        const std::string doc = recorder.pointJson("bench");
        benchmark::DoNotOptimize(doc.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderDump);

/** Quantile over 16 sketch parts without materializing a merge. */
void
BM_SketchMergedQuantile(benchmark::State &state)
{
    std::vector<util::QuantileSketch> parts;
    for (int s = 0; s < 16; ++s) {
        parts.push_back(util::QuantileSketch::linear(0.0, 150.0, 128));
        for (int i = 0; i < 1000; ++i)
            parts.back().add(static_cast<double>((i * (s + 3)) % 1500) /
                             10.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::QuantileSketch::mergedQuantile(parts, 99.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchMergedQuantile);

/**
 * `--check`: enforce the flight recorder's allocation contract without
 * the timing harness. A 16384-server fleet pipeline warms up long
 * enough to size every tier and cross all three bin boundaries, then
 * 1000 further record ticks must perform zero heap allocations. Also
 * smoke-tests the dump path (non-empty, schema-stamped). Exit 0 on
 * pass, 1 with a diagnostic on stderr otherwise.
 */
int
runSteadyStateCheck()
{
    constexpr std::size_t kServers = 16384;
    constexpr std::size_t kWarmupTicks = 200;
    constexpr std::size_t kMeasuredTicks = 1000;

    SyntheticFleet fleet(kServers, 3);
    obs::FleetAggregator::Config agg_cfg;
    agg_cfg.skuCount = 3;
    agg_cfg.record = false;
    agg_cfg.cumulative = false;
    obs::FleetBlackbox box(agg_cfg, obs::FlightRecorder::Config{},
                           /*fire_power_w=*/1e12,
                           /*clear_power_w=*/9e11);

    std::size_t tick = 0;
    for (; tick < kWarmupTicks; ++tick) {
        fleet.mutate(tick);
        const Seconds t = static_cast<double>(tick) * 60.0;
        box.aggregator.observe(t, fleet.view(), 60.0);
        box.recorder.tick(t);
    }

    std::uint64_t tick_allocs = 0;
    for (std::size_t i = 0; i < kMeasuredTicks; ++i, ++tick) {
        fleet.mutate(tick);
        const Seconds t = static_cast<double>(tick) * 60.0;
        box.aggregator.observe(t, fleet.view(), 60.0);
        const std::uint64_t before = allocsSoFar();
        box.recorder.tick(t);
        tick_allocs += allocsSoFar() - before;
    }

    int failures = 0;
    if (tick_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: FlightRecorder::tick allocated %llu times "
                     "over %zu steady-state ticks (contract: 0)\n",
                     static_cast<unsigned long long>(tick_allocs),
                     kMeasuredTicks);
        ++failures;
    }
    const std::string doc = box.recorder.toJson("check");
    if (doc.find(obs::kBlackboxSchema) == std::string::npos) {
        std::fprintf(stderr, "FAIL: dump is missing the %s schema "
                             "stamp\n",
                     obs::kBlackboxSchema);
        ++failures;
    }
    if (box.recorder.ticks() != kWarmupTicks + kMeasuredTicks) {
        std::fprintf(stderr, "FAIL: recorder counted %zu ticks, "
                             "expected %zu\n",
                     box.recorder.ticks(),
                     kWarmupTicks + kMeasuredTicks);
        ++failures;
    }
    if (failures == 0) {
        std::printf("bench_obs_overhead --check: flight recorder "
                    "steady-state ticks allocation-free over %zu ticks "
                    "(%zu servers); dump schema-stamped. PASS\n",
                    kMeasuredTicks, kServers);
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            return runSteadyStateCheck();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
