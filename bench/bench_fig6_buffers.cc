/**
 * @file
 * Regenerates the Fig. 6 comparison: static failover buffers (reserved
 * servers, idle in normal operation) versus virtual buffers realised by
 * overclocking survivors after a failure.
 */

#include <iostream>

#include "cluster/buffers.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(
        std::cout,
        "Fig. 6: static vs virtual (overclocked) failover buffers");
    std::cout << "Fleet: 1000 servers, 10 VMs/server, 10% buffer, 1 year,"
                 " 0.5 failures/server-year,\n24 h mean repair.\n";

    cluster::BufferSimulator sim(1000, 10, 0.10);
    util::Rng rng(2021);
    const double hours = 24.0 * 365.0;

    util::TableWriter table({"Metric", "Static buffer", "Virtual buffer"});
    const auto stat = sim.simulate(cluster::BufferStrategy::Static, rng,
                                   hours, 0.5, 24.0);
    const auto virt = sim.simulate(cluster::BufferStrategy::Virtual, rng,
                                   hours, 0.5, 24.0);

    table.addRow({"Sellable servers (normal op)",
                  util::fmt(stat.sellableServers, 0),
                  util::fmt(virt.sellableServers, 0)});
    table.addRow({"VMs hosted (normal op)", util::fmt(stat.vmsHosted, 0),
                  util::fmt(virt.vmsHosted, 0)});
    table.addRow({"Fleet utilization",
                  util::fmt(stat.utilizationNormal * 100.0, 0) + "%",
                  util::fmt(virt.utilizationNormal * 100.0, 0) + "%"});
    table.addRow({"Failures simulated", util::fmt(stat.failures, 0),
                  util::fmt(virt.failures, 0)});
    table.addRow({"Failures fully absorbed", util::fmt(stat.recovered, 0),
                  util::fmt(virt.recovered, 0)});
    table.addRow({"Overclocked server-hours", util::fmt(stat.overclockHours, 0),
                  util::fmt(virt.overclockHours, 0)});
    table.print(std::cout);

    const double extra =
        static_cast<double>(virt.vmsHosted) / stat.vmsHosted - 1.0;
    std::cout << "The virtual buffer sells " << util::fmtPercent(extra)
              << " more VMs in normal operation while\nabsorbing the same"
                 " failures; the price is a small amount of overclocked"
                 " hours\n(and their wear, budgeted by the controller).\n";

    util::printHeading(std::cout, "Sensitivity: buffer size sweep");
    util::TableWriter sweep({"Buffer", "Static VMs", "Virtual VMs",
                             "Virtual advantage"});
    for (double frac : {0.05, 0.10, 0.15, 0.20}) {
        cluster::BufferSimulator s(1000, 10, frac);
        util::Rng r(7);
        const auto st =
            s.simulate(cluster::BufferStrategy::Static, r, hours);
        const auto vt =
            s.simulate(cluster::BufferStrategy::Virtual, r, hours);
        sweep.addRow({util::fmt(frac * 100.0, 0) + "%",
                      util::fmt(st.vmsHosted, 0),
                      util::fmt(vt.vmsHosted, 0),
                      util::fmtPercent(static_cast<double>(vt.vmsHosted) /
                                           st.vmsHosted -
                                       1.0)});
    }
    sweep.print(std::cout);
    return 0;
}
