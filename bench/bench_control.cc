/**
 * @file
 * Controller comparison on the closed-loop control environment: the
 * paper's static OC-A/OC-B schedules against three feedback
 * controllers (PID on max Tj, greedy TCO hill-climbing, epsilon-greedy
 * bandit), each driven through one diurnal day that includes a feed
 * derate, a cooling degradation, and a VM crash. Every (controller,
 * feed) point reports tail latency, cost per million requests, and
 * implied lifetime; the rows on the latency/cost Pareto front are
 * marked, which is the bench's headline: which control laws buy
 * overclocking's speedup without paying for it in wear or SLA.
 *
 * Determinism: each feed group shares one seed, so every controller in
 * a group faces the identical diurnal traces and arrival stream; the
 * sweep fans over the experiment engine, and the table/report are
 * byte-identical for any --jobs and --sim-threads values.
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "control/controllers.hh"
#include "control/env.hh"
#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

namespace {

constexpr std::uint64_t kSeedBase = 7001;

struct PointResult
{
    control::ControlOutcome outcome;
};

/** Crisis schedule scaled to the horizon: a VM crash in the diurnal
 *  trough (losing half the proxy cluster where the backlog can still
 *  drain), a 70% feed derate through the morning ramp, and a cooling
 *  degradation just ahead of the 16:00 peak — every controller must
 *  ride through all three. */
fault::FaultPlan
crisisPlan(double days)
{
    const Seconds horizon = days * 86400.0;
    fault::FaultPlan plan;
    plan.at(0.08 * horizon,
            {fault::FaultKind::ServerCrash, fault::kAnyServer, 0.0});
    plan.at(0.13 * horizon,
            {fault::FaultKind::ServerRepair, fault::kAnyServer, 0.0});
    plan.at(0.25 * horizon,
            {fault::FaultKind::PowerDerate, fault::kAnyServer, 0.7});
    plan.at(0.35 * horizon,
            {fault::FaultKind::PowerRestore, fault::kAnyServer, 0.0});
    plan.at(0.50 * horizon,
            {fault::FaultKind::CoolingDegrade, fault::kAnyServer, 0.5});
    plan.at(0.58 * horizon,
            {fault::FaultKind::CoolingRestore, fault::kAnyServer, 0.0});
    return plan;
}

std::unique_ptr<control::Controller>
makeController(const std::string &name, const control::ControlEnv &env,
               std::uint64_t bandit_seed)
{
    const GHz floor = env.minCeiling();
    const GHz cap = env.maxCeiling();
    const Seconds sla = env.config().slaP99;
    if (name == "static-baseline")
        return std::make_unique<control::StaticOcController>(
            control::StaticOcController::Mode::Baseline, floor, cap);
    if (name == "static-oc-a")
        return std::make_unique<control::StaticOcController>(
            control::StaticOcController::Mode::OcA, floor, cap);
    if (name == "static-oc-b")
        return std::make_unique<control::StaticOcController>(
            control::StaticOcController::Mode::OcB, floor, cap);
    if (name == "pid-tj")
        return std::make_unique<control::PidTjController>(
            /*setpoint=*/66.0, floor, cap);
    if (name == "greedy-tco")
        return std::make_unique<control::GreedyTcoController>(
            floor, cap, /*levels=*/5, sla);
    if (name == "bandit")
        return std::make_unique<control::BanditController>(
            floor, cap, bandit_seed, /*levels=*/5, /*epsilon=*/0.1, sla);
    util::fatal("bench_control: unknown controller " + name);
}

exp::RunReport
controllerSweep(const util::Cli &cli, const obs::RunManifest &manifest,
                double days)
{
    util::printHeading(
        std::cout,
        "Closed-loop control: static schedules vs feedback controllers");
    std::cout << "24 servers (2 batch + 1 latency rack), diurnal day"
                 " with a feed derate,\na cooling degradation and a VM"
                 " crash; M/G/k latency proxy at the fleet's\ndelivered"
                 " clock. Feed levels share seeds, so controllers"
                 " compare on\nidentical workloads.\n\n";

    const std::vector<std::string> controllers{
        "static-baseline", "static-oc-a", "static-oc-b",
        "pid-tj",          "greedy-tco",  "bandit"};
    const std::vector<Watts> feeds{40000.0, 34000.0};

    const auto progress = exp::progressFromCli(cli, "control");
    exp::SweepRunner runner({cli.jobs(), kSeedBase, progress.get()});
    std::vector<exp::Params> grid;
    for (std::size_t f = 0; f < feeds.size(); ++f) {
        for (const auto &name : controllers) {
            grid.push_back(exp::Params{
                {"controller", name},
                {"feed_kw", util::fmt(feeds[f] / 1000.0, 0)}});
        }
    }

    exp::RunReport report = runner.run(
        "control", grid,
        [&](const exp::Params &, std::size_t i, util::Rng &,
            exp::MetricsRegistry &metrics) {
            const std::size_t f = i / controllers.size();
            const std::string &name = controllers[i % controllers.size()];

            control::ControlEnvConfig cfg;
            cfg.days = days;
            cfg.feedCapacity = feeds[f];
            cfg.simThreads = cli.simThreads();
            cfg.crises = crisisPlan(days);

            // One seed per feed group: every controller in the group
            // sees the same traces and the same arrival stream.
            util::Rng rng(kSeedBase + f);
            control::ControlEnv env(cfg, rng);
            const auto controller =
                makeController(name, env, /*bandit_seed=*/977 + f);
            const auto outcome = control::runEpisode(env, *controller);

            metrics.scalar("p99_ms", outcome.p99LatencyS * 1000.0);
            metrics.scalar("cost_per_mreq",
                           outcome.costPerMRequestsUsd);
            metrics.scalar("lifetime_years",
                           std::min(outcome.impliedLifetimeYears, 99.0));
            metrics.scalar("sla_violation_share",
                           outcome.slaViolationShare);
            metrics.scalar("mean_ceiling_ghz", outcome.meanCeilingGhz);
            metrics.scalar("energy_mwh", outcome.energyMwh);
            metrics.scalar("max_tj_c", outcome.maxTjC);
            metrics.scalar(
                "requests_m",
                static_cast<double>(outcome.requests) / 1e6);
        });
    report.setMeta(manifest.entries());

    // Pareto front over (P99 latency, cost per Mreq), both minimized:
    // a row is dominated when another row is no worse on both axes and
    // strictly better on one.
    const auto &records = report.records();
    std::vector<bool> pareto(records.size(), true);
    for (std::size_t a = 0; a < records.size(); ++a) {
        const double pa = records[a].metrics.get("p99_ms");
        const double ca = records[a].metrics.get("cost_per_mreq");
        for (std::size_t b = 0; b < records.size(); ++b) {
            if (a == b)
                continue;
            const double pb = records[b].metrics.get("p99_ms");
            const double cb = records[b].metrics.get("cost_per_mreq");
            if (pb <= pa && cb <= ca && (pb < pa || cb < ca)) {
                pareto[a] = false;
                break;
            }
        }
    }

    util::TableWriter table({"Controller", "Feed", "P99 [ms]",
                             "USD/Mreq", "Lifetime [yr]", "SLA viol",
                             "Ceiling [GHz]", "Max Tj", "Pareto"});
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &m = records[i].metrics;
        table.addRow(
            {records[i].params[0].second,
             records[i].params[1].second + " kW",
             util::fmt(m.get("p99_ms"), 1),
             util::fmt(m.get("cost_per_mreq"), 2),
             util::fmt(m.get("lifetime_years"), 1),
             util::fmt(m.get("sla_violation_share") * 100.0, 1) + "%",
             util::fmt(m.get("mean_ceiling_ghz"), 2),
             util::fmt(m.get("max_tj_c"), 1),
             pareto[i] ? "*" : ""});
    }
    table.print(std::cout);
    std::cout << "Rows marked * sit on the latency/cost Pareto front."
                 " The static schedules\nbracket the space — baseline"
                 " cheap-but-slow, OC-A fast-but-wearing — and\nthe"
                 " feedback controllers claim the front between them by"
                 " overclocking only\nwhen thermal headroom (PID) or"
                 " marginal TCO (greedy, bandit) says it pays.\n";
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags: --jobs N, --sim-threads N (bit-identical for any values),
    // --days D (horizon), --report FILE, --smoke (tiny horizon for
    // ctest), --progress [FILE], --profile [FILE].
    const util::Cli cli(argc, argv);
    obs::maybeEnableProfiler(cli);
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, kSeedBase, cli.jobs());
    const double days =
        cli.has("--smoke") ? 0.05 : cli.getDouble("--days", 1.0);
    const exp::RunReport report = controllerSweep(cli, manifest, days);
    exp::maybeWriteReport(cli, report, std::cout);
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
