/**
 * @file
 * Regenerates Fig. 15: validation of the Eq. 1 utilization model. Three
 * server VMs serve a load that steps through 1000/2000/500/3000/1000 QPS
 * every 5 minutes; the auto-scaler may only scale up/down (no
 * scale-out). The trace shows the model driving utilization back under
 * the 40 % threshold whenever a frequency exists that can, and the
 * frequency relaxing when load drops.
 */

#include <iostream>

#include "autoscale/experiment.hh"
#include "autoscale/model.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(
        std::cout,
        "Fig. 15: Eq. 1 model validation (3 VMs, scale-up/down only)");
    std::cout << "Load: 1000 / 2000 / 500 / 3000 / 1000 QPS, 5 minutes"
                 " each. Frequency range\nB2 (3.4 GHz) to OC1 (4.1 GHz),"
                 " 8 bins; scale-up threshold 40%.\n\n";

    const auto scaled = autoscale::runValidationExperiment(true);
    const auto flat = autoscale::runValidationExperiment(false);

    const autoscale::FrequencyGrid grid(3.4, 4.1, 8);
    util::TableWriter table({"t [s]", "QPS", "Util (no scaling)",
                             "Util (model)", "Frequency",
                             "Freq [% of range]"});
    const std::vector<double> levels{1000, 2000, 500, 3000, 1000};
    for (std::size_t i = 0; i < scaled.trace.size(); ++i) {
        const auto &point = scaled.trace[i];
        // Print one row every 30 s to keep the series readable.
        if (static_cast<long>(point.time) % 30 != 0)
            continue;
        const auto level_idx = std::min<std::size_t>(
            static_cast<std::size_t>(point.time / 300.0), 4);
        const double flat_util =
            i < flat.trace.size() ? flat.trace[i].util30 : 0.0;
        table.addRow({util::fmt(point.time, 0),
                      util::fmt(levels[level_idx], 0),
                      util::fmt(flat_util * 100.0, 1) + "%",
                      util::fmt(point.util30 * 100.0, 1) + "%",
                      util::fmt(point.frequency, 2) + " GHz",
                      util::fmt(grid.spanFraction(point.frequency) * 100.0,
                                0) + "%"});
    }
    table.print(std::cout);

    // Summary statistics per load level.
    util::printHeading(std::cout, "Per-level summary");
    util::TableWriter summary({"QPS", "Util no-scaling (last 2 min)",
                               "Util model (last 2 min)",
                               "Freq (last 2 min)"});
    for (std::size_t level = 0; level < levels.size(); ++level) {
        const Seconds lo = 300.0 * level + 180.0;
        const Seconds hi = 300.0 * (level + 1);
        double flat_util = 0.0;
        double model_util = 0.0;
        double freq = 0.0;
        int count = 0;
        for (std::size_t i = 0; i < scaled.trace.size(); ++i) {
            const auto &point = scaled.trace[i];
            if (point.time < lo || point.time > hi)
                continue;
            model_util += point.util30;
            freq += point.frequency;
            if (i < flat.trace.size())
                flat_util += flat.trace[i].util30;
            ++count;
        }
        if (!count)
            continue;
        summary.addRow({util::fmt(levels[level], 0),
                        util::fmt(flat_util / count * 100.0, 1) + "%",
                        util::fmt(model_util / count * 100.0, 1) + "%",
                        util::fmt(freq / count, 2) + " GHz"});
    }
    summary.print(std::cout);
    std::cout << "Paper shape: at 2000 QPS the model raises frequency in"
                 " steps until utilization\ndrops below 40%; at 500 QPS"
                 " it relaxes to the base clock; at 3000 QPS even the\n"
                 "maximum frequency leaves utilization above the scale-out"
                 " threshold, which would\ntrigger a scale-out in the"
                 " full system.\n";
    return 0;
}
