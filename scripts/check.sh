#!/usr/bin/env bash
# The pre-commit gate, in the order a failure is cheapest to find:
#   1. configure + build the default (RelWithDebInfo) tree;
#   2. the full tier-1 ctest suite (unit, integration, properties);
#   3. the fault-injection suite (`ctest -L fault`: injector unit tests
#      plus the capacity-crisis smoke sweep);
#   4. the fleet smoke (`ctest -L fleet`: the scalar-vs-batched
#      equivalence oracle and fleet edge cases);
#   5. the intra-run parallelism gate (`ctest -L fleet-par`: sharded
#      minute-loop outputs bit-identical to serial for any --sim-threads);
#   6. the observability suite (`ctest -L obs`: sketches, fleet
#      aggregator, watchdogs, incident timelines, crisis detection);
#   7. the flight-recorder suite (`ctest -L blackbox`: retention /
#      post-mortem unit tests plus the end-to-end dump + report gate);
#   8. the closed-loop control suite (`ctest -L control`: the ControlEnv
#      determinism oracle, controller envelope tests, and the
#      bench_control --smoke controller sweep);
#   9. the perf smoke benches (`ctest -L perf`);
#  10. the hot-path regression check against the committed
#      BENCH_hotpaths.json (scripts/bench.sh --check, which also runs
#      the bench_obs_overhead --check 0-allocs contract).
#
# Stops at the first failing step. The tsan suites have their own
# entry point (scripts/tsan.sh) because they need a separate build.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== [1/10] build ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== [2/10] tier-1 tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== [3/10] fault-injection suite (ctest -L fault) =="
ctest --test-dir "$BUILD_DIR" -L fault --output-on-failure

echo "== [4/10] fleet smoke (ctest -L fleet) =="
ctest --test-dir "$BUILD_DIR" -L fleet --output-on-failure

echo "== [5/10] intra-run parallelism gate (ctest -L fleet-par) =="
ctest --test-dir "$BUILD_DIR" -L fleet-par --output-on-failure

echo "== [6/10] observability suite (ctest -L obs) =="
ctest --test-dir "$BUILD_DIR" -L obs --output-on-failure

echo "== [7/10] flight-recorder suite (ctest -L blackbox) =="
ctest --test-dir "$BUILD_DIR" -L blackbox --output-on-failure

echo "== [8/10] closed-loop control suite (ctest -L control) =="
ctest --test-dir "$BUILD_DIR" -L control --output-on-failure

echo "== [9/10] perf smoke (ctest -L perf) =="
ctest --test-dir "$BUILD_DIR" -L perf --output-on-failure

echo "== [10/10] hot-path regression check =="
scripts/bench.sh --check

echo "All checks passed."
