#!/usr/bin/env bash
# Build the ThreadSanitizer configuration (warnings-as-errors) and run
# the concurrency-sensitive tests (ctest label "tsan"): the experiment
# engine's thread pool, parallel sweeps, the observability layer's
# per-point capture/merge path, and the intra-run fleet sharding (the
# "fleet-par-tsan"/"obs-tsan" labels match the tsan regex, so the
# sharded minute loop and sharded FleetAggregator::observe run under
# the sanitizer here).
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
    -DIMSIM_SANITIZE=thread \
    -DIMSIM_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure -j "$(nproc)"
