#!/usr/bin/env bash
# Build the Release configuration and run the hot-path perf-regression
# harness (bench/bench_hot_paths.cc), writing BENCH_hotpaths.json at
# the repo root. Commit the refreshed JSON alongside performance-
# sensitive changes so the next PR has a baseline to diff against; the
# schema is documented in DESIGN.md ("Performance & hot paths").
#
# A fast smoke variant runs under plain ctest: `ctest -L perf`.
#
# Usage: scripts/bench.sh [build-dir] [extra bench flags...]
#        (default build dir: build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_hot_paths
"$BUILD_DIR"/bench/bench_hot_paths --out BENCH_hotpaths.json "$@"
