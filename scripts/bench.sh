#!/usr/bin/env bash
# Build the Release configuration and run the hot-path perf-regression
# harness (bench/bench_hot_paths.cc), writing BENCH_hotpaths.json at
# the repo root. Commit the refreshed JSON alongside performance-
# sensitive changes so the next PR has a baseline to diff against; the
# schema is documented in DESIGN.md ("Performance & hot paths").
#
# With --check the committed BENCH_hotpaths.json is treated as the
# baseline instead of being overwritten: a fresh full-scale run is
# compared against it (ns/op within a tolerance band, allocs/op
# tightly) and the script exits non-zero on a regression. This is the
# gate scripts/check.sh runs before a commit.
#
# A fast smoke variant runs under plain ctest: `ctest -L perf`.
#
# Usage: scripts/bench.sh [--check] [build-dir] [extra bench flags...]
#        (default build dir: build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
    CHECK=1
    shift
fi
BUILD_DIR="${1:-build-bench}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_hot_paths bench_fault_crisis bench_obs_overhead \
             bench_control

if [[ "$CHECK" == 1 ]]; then
    # Container timing is noisy, so the ns/op band is generous (x1.5);
    # the allocs/op contract is structural and always checked tightly.
    "$BUILD_DIR"/bench/bench_hot_paths \
        --out "$BUILD_DIR"/BENCH_hotpaths.fresh.json \
        --baseline BENCH_hotpaths.json --tolerance 0.5 "$@"
else
    # A committed baseline must be reproducible: refuse to write one
    # from a dirty tree (its manifest would record git_dirty=true and
    # the numbers could include uncommitted code). Export
    # IMSIM_BENCH_ALLOW_DIRTY=1 for local experiments.
    if [[ -n "$(git status --porcelain 2>/dev/null)" ]]; then
        if [[ "${IMSIM_BENCH_ALLOW_DIRTY:-0}" == 1 ]]; then
            echo "WARNING: writing BENCH_hotpaths.json from a DIRTY" \
                 "tree (IMSIM_BENCH_ALLOW_DIRTY=1); do not commit" \
                 "this baseline." >&2
        else
            echo "ERROR: working tree is dirty; a committed baseline" \
                 "must come from a clean tree. Commit/stash first, or" \
                 "set IMSIM_BENCH_ALLOW_DIRTY=1 for a throwaway" \
                 "local run." >&2
            exit 1
        fi
    fi
    "$BUILD_DIR"/bench/bench_hot_paths --out BENCH_hotpaths.json "$@"
fi

# Capacity-crisis smoke: a functional gate only (the sweep exercises the
# fault injector end to end), deliberately outside the --check timing
# band above — fault runs are scenario benchmarks, not hot-path timings.
"$BUILD_DIR"/bench/bench_fault_crisis --smoke >/dev/null
echo "bench_fault_crisis --smoke: ok"

# Flight-recorder steady-state contract: 1000 recorder ticks over a
# 16384-server fleet bundle must perform zero heap allocations (see
# bench/bench_obs_overhead.cc). A functional gate like the crisis
# smoke above — the timing of these cases lives in the
# flight_recorder_tick row of BENCH_hotpaths.json.
"$BUILD_DIR"/bench/bench_obs_overhead --check
echo "bench_obs_overhead --check: ok"

# Closed-loop controller smoke: a tiny-horizon sweep of the static and
# feedback controllers through a scripted crisis day (see
# bench/bench_control.cc). Functional gate only, outside the --check
# timing band — controller episodes are scenario runs, not hot paths.
"$BUILD_DIR"/bench/bench_control --smoke >/dev/null
echo "bench_control --smoke: ok"
