#!/usr/bin/env bash
# End-to-end check of the black-box flight recorder (registered as the
# `blackbox_report_check` ctest): run a small capacity-crisis sweep
# with `--blackbox` on, then assert
#   - the dump is a schema-stamped imsim.blackbox/1 document;
#   - the dump payload is deterministic: byte-identical for --jobs 1
#     and --jobs 4 once the manifest line (timestamp/argv) is dropped;
#   - tools/imsim_report renders the dump as a Flight recorder section
#     with inline SVG timelines;
#   - a newer-schema dump degrades to the muted fallback paragraph
#     instead of failing the whole page.
#
# Usage: scripts/check_blackbox_report.sh CRISIS_BIN REPORT_BIN OUTDIR
set -euo pipefail

CRISIS_BIN="$1"
REPORT_BIN="$2"
OUTDIR="$3"

mkdir -p "$OUTDIR"

"$CRISIS_BIN" --smoke --jobs 2 \
    --blackbox "$OUTDIR/blackbox.json" \
    --report "$OUTDIR/run.json" \
    --watchdog "$OUTDIR/incidents.json" >/dev/null 2>&1

if ! grep -q '"schema": "imsim.blackbox/1"' "$OUTDIR/blackbox.json"; then
    echo "FAIL: $OUTDIR/blackbox.json is not schema-stamped" >&2
    exit 1
fi

# Determinism across worker counts: the recorder payload may not
# depend on sweep scheduling. Only the manifest line (one line holding
# the timestamp and argv) may differ.
"$CRISIS_BIN" --smoke --jobs 1 \
    --blackbox "$OUTDIR/blackbox_j1.json" >/dev/null 2>&1
"$CRISIS_BIN" --smoke --jobs 4 \
    --blackbox "$OUTDIR/blackbox_j4.json" >/dev/null 2>&1
if ! cmp -s <(sed '/"meta"/d' "$OUTDIR/blackbox_j1.json") \
            <(sed '/"meta"/d' "$OUTDIR/blackbox_j4.json"); then
    echo "FAIL: blackbox payload differs between --jobs 1 and 4" >&2
    exit 1
fi

"$REPORT_BIN" --report "$OUTDIR/run.json" \
    --incidents "$OUTDIR/incidents.json" \
    --blackbox "$OUTDIR/blackbox.json" \
    --out "$OUTDIR/report.html"
HTML="$OUTDIR/report.html"
if ! grep -q "Flight recorder" "$HTML"; then
    echo "FAIL: no Flight recorder section in $HTML" >&2
    exit 1
fi
if ! grep -q '<svg class="timeline"' "$HTML"; then
    echo "FAIL: no inline SVG timeline in $HTML" >&2
    exit 1
fi

# Forward compatibility: a dump from a newer build must degrade to the
# muted paragraph, not break the page.
echo '{"schema": "imsim.blackbox/99", "points": []}' \
    > "$OUTDIR/blackbox_future.json"
"$REPORT_BIN" --report "$OUTDIR/run.json" \
    --blackbox "$OUTDIR/blackbox_future.json" \
    --out "$OUTDIR/report_future.html" 2>/dev/null
if ! grep -q "Could not render blackbox" "$OUTDIR/report_future.html"; then
    echo "FAIL: newer-schema dump did not degrade gracefully" >&2
    exit 1
fi

echo "blackbox_report_check: OK ($HTML)"
