#!/usr/bin/env bash
# End-to-end check of the unified HTML run report (registered as the
# `report_html_check` ctest): run a small Table 11 sweep with the
# observability flags on, merge its artifacts with tools/imsim_report,
# and assert the page is complete and self-contained:
#   - the configure-time git SHA (provenance) made it into the HTML;
#   - inline SVG sparklines are present;
#   - no external http(s) assets are referenced.
#
# Usage: scripts/check_report_html.sh BENCH_BIN REPORT_BIN GIT_SHA OUTDIR
set -euo pipefail

BENCH_BIN="$1"
REPORT_BIN="$2"
GIT_SHA="$3"
OUTDIR="$4"

mkdir -p "$OUTDIR"

"$BENCH_BIN" --step 60 --skip-downramp --jobs 2 \
    --report "$OUTDIR/run.json" \
    --telemetry "$OUTDIR/run.csv" \
    --profile "$OUTDIR/profile.json" \
    --progress "$OUTDIR/progress.jsonl" >/dev/null 2>&1

"$REPORT_BIN" --report "$OUTDIR/run.json" \
    --telemetry "$OUTDIR/run.csv" \
    --profile "$OUTDIR/profile.json" \
    --out "$OUTDIR/report.html"

HTML="$OUTDIR/report.html"

if [[ "$GIT_SHA" != "unknown" ]] && ! grep -q "$GIT_SHA" "$HTML"; then
    echo "FAIL: git SHA $GIT_SHA missing from $HTML" >&2
    exit 1
fi
if ! grep -q "<svg" "$HTML"; then
    echo "FAIL: no inline SVG sparklines in $HTML" >&2
    exit 1
fi
if grep -qE '(src|href)="https?://' "$HTML"; then
    echo "FAIL: external asset reference found in $HTML" >&2
    exit 1
fi
echo "report_html_check: OK ($HTML)"
