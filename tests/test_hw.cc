/**
 * @file
 * Unit tests for the hw module: Table VII/VIII config catalogs, the
 * turbo governor and Fig. 4 operating domains, the Table III one-bin
 * turbo gain under 2PIC, the CPU package model, counters, and the GPU.
 */

#include <gtest/gtest.h>

#include "hw/configs.hh"
#include "hw/counters.hh"
#include "hw/cpu.hh"
#include "hw/gpu.hh"
#include "hw/turbo.hh"
#include "thermal/cooling.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

// --- Config catalogs (Tables VII and VIII) --------------------------------

TEST(CpuConfigs, TableViiRows)
{
    const auto &catalog = hw::cpuConfigCatalog();
    ASSERT_EQ(catalog.size(), 7u);

    const auto &b1 = hw::cpuConfig("B1");
    EXPECT_DOUBLE_EQ(b1.core, 3.1);
    EXPECT_FALSE(b1.turboEnabled);
    EXPECT_DOUBLE_EQ(b1.llc, 2.4);
    EXPECT_DOUBLE_EQ(b1.memory, 2.4);
    EXPECT_FALSE(b1.isOverclock());

    const auto &b4 = hw::cpuConfig("B4");
    EXPECT_DOUBLE_EQ(b4.core, 3.4);
    EXPECT_DOUBLE_EQ(b4.llc, 2.8);
    EXPECT_DOUBLE_EQ(b4.memory, 3.0);

    const auto &oc3 = hw::cpuConfig("OC3");
    EXPECT_DOUBLE_EQ(oc3.core, 4.1);
    EXPECT_DOUBLE_EQ(oc3.voltageOffsetMv, 50.0);
    EXPECT_DOUBLE_EQ(oc3.llc, 2.8);
    EXPECT_DOUBLE_EQ(oc3.memory, 3.0);
    EXPECT_TRUE(oc3.isOverclock());
}

TEST(CpuConfigs, UnknownNameIsFatal)
{
    EXPECT_THROW(hw::cpuConfig("OC9"), FatalError);
}

TEST(GpuConfigs, TableViiiRows)
{
    const auto &catalog = hw::gpuConfigCatalog();
    ASSERT_EQ(catalog.size(), 4u);
    const auto &base = hw::gpuConfig("Base");
    EXPECT_DOUBLE_EQ(base.powerLimit, 250.0);
    EXPECT_DOUBLE_EQ(base.turbo, 1.950);
    EXPECT_DOUBLE_EQ(base.memory, 6.8);
    EXPECT_FALSE(base.isOverclock());

    const auto &ocg3 = hw::gpuConfig("OCG3");
    EXPECT_DOUBLE_EQ(ocg3.powerLimit, 300.0);
    EXPECT_DOUBLE_EQ(ocg3.turbo, 2.085);
    EXPECT_DOUBLE_EQ(ocg3.memory, 8.3);
    EXPECT_DOUBLE_EQ(ocg3.voltageOffsetMv, 100.0);
    EXPECT_TRUE(ocg3.isOverclock());
}

// --- Turbo governor and Fig. 4 domains ------------------------------------

TEST(Turbo, CeilingDroopsWithActiveCores)
{
    const auto governor = hw::TurboGovernor::skylake8180();
    EXPECT_DOUBLE_EQ(governor.turboCeiling(1), 3.8);
    EXPECT_DOUBLE_EQ(governor.turboCeiling(28), 3.2);
    GHz prev = 10.0;
    for (int n = 1; n <= 28; ++n) {
        EXPECT_LE(governor.turboCeiling(n), prev + 1e-9);
        prev = governor.turboCeiling(n);
    }
}

TEST(Turbo, Fig4DomainClassification)
{
    const auto governor = hw::TurboGovernor::skylake8180();
    EXPECT_EQ(governor.classify(2.0, 28), hw::FrequencyDomain::Guaranteed);
    EXPECT_EQ(governor.classify(2.5, 28), hw::FrequencyDomain::Guaranteed);
    EXPECT_EQ(governor.classify(3.0, 28), hw::FrequencyDomain::Turbo);
    EXPECT_EQ(governor.classify(3.5, 28),
              hw::FrequencyDomain::Overclocking);
    EXPECT_EQ(governor.classify(4.3, 28),
              hw::FrequencyDomain::NonOperating);
}

TEST(Turbo, DomainDependsOnActiveCores)
{
    // 3.5 GHz is turbo with one core active but overclocking with all.
    const auto governor = hw::TurboGovernor::skylake8180();
    EXPECT_EQ(governor.classify(3.5, 1), hw::FrequencyDomain::Turbo);
    EXPECT_EQ(governor.classify(3.5, 28),
              hw::FrequencyDomain::Overclocking);
}

TEST(Turbo, DomainNamesArePrintable)
{
    EXPECT_EQ(hw::domainName(hw::FrequencyDomain::Guaranteed), "guaranteed");
    EXPECT_EQ(hw::domainName(hw::FrequencyDomain::Overclocking),
              "overclocking");
}

TEST(Turbo, TableIiiMaxTurbo8168)
{
    // Air 3.1 GHz vs 2PIC 3.2 GHz at the 205 W TDP (Table III).
    const auto governor = hw::TurboGovernor::skylake8168();
    const auto socket = power::SocketPowerModel::skylakeServer(3.1);
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::CopperPlate});
    EXPECT_NEAR(governor.effectiveFrequency(socket, air, 24), 3.1, 0.001);
    EXPECT_NEAR(governor.effectiveFrequency(socket, fc, 24), 3.2, 0.001);
}

TEST(Turbo, TableIiiMaxTurbo8180)
{
    // Air 2.6 GHz vs 2PIC 2.7 GHz (Table III).
    const auto governor = hw::TurboGovernor::skylake8180();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    EXPECT_NEAR(governor.effectiveFrequency(socket, air, 28), 2.6, 0.001);
    EXPECT_NEAR(governor.effectiveFrequency(socket, fc, 28), 2.7, 0.001);
}

TEST(Turbo, FewActiveCoresReachTableCeiling)
{
    const auto governor = hw::TurboGovernor::skylake8168();
    const auto socket = power::SocketPowerModel::skylakeServer(3.1);
    thermal::AirCooling air;
    // One active core is nowhere near the TDP: the table ceiling rules.
    EXPECT_NEAR(governor.effectiveFrequency(socket, air, 1),
                governor.turboCeiling(1), 0.001);
}

TEST(Turbo, RaisedTdpUnlocksHigherFrequency)
{
    auto governor = hw::TurboGovernor::skylake8168();
    const auto socket = power::SocketPowerModel::skylakeServer(3.1);
    thermal::TwoPhaseImmersionCooling fc(thermal::fc3284());
    const GHz before = governor.effectiveFrequency(socket, fc, 24);
    governor.setTdp(305.0);
    const GHz after = governor.effectiveFrequency(socket, fc, 24);
    EXPECT_GT(after, before);
}

TEST(Turbo, OrderingValidation)
{
    EXPECT_THROW(hw::TurboGovernor(4, 2.0, 1.0, 3.0, 2.5, 4.0, 100.0),
                 FatalError);
    EXPECT_THROW(hw::TurboGovernor(0, 1.0, 2.0, 3.0, 2.5, 4.0, 100.0),
                 FatalError);
}

// --- CPU package model ------------------------------------------------------

TEST(CpuModel, LockedPartRejectsOverclockConfigs)
{
    auto cpu = hw::CpuModel::skylake8180();
    EXPECT_THROW(cpu.applyConfig(hw::cpuConfig("OC1")), FatalError);
    EXPECT_NO_THROW(cpu.applyConfig(hw::cpuConfig("B2")));
}

TEST(CpuModel, UnlockedPartAcceptsOverclockConfigs)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    EXPECT_NO_THROW(cpu.applyConfig(hw::cpuConfig("OC3")));
    EXPECT_DOUBLE_EQ(cpu.clocks().core, 4.1);
    EXPECT_DOUBLE_EQ(cpu.clocks().llc, 2.8);
    EXPECT_DOUBLE_EQ(cpu.clocks().memory, 3.0);
    EXPECT_EQ(cpu.configName(), "OC3");
}

TEST(CpuModel, VoltageOffsetAddsMargin)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("OC1"));
    // The +50 mV offset is entirely margin above the V-f curve.
    EXPECT_NEAR(cpu.voltageMarginMv(), 50.0, 1e-6);
    cpu.setVoltageOffset(0.0);
    EXPECT_NEAR(cpu.voltageMarginMv(), 0.0, 1e-6);
}

TEST(CpuModel, PowerIncreasesWithEachDomainClock)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
    cpu.applyConfig(hw::cpuConfig("B2"));
    const Watts b2 = cpu.power(hfe, 1.0).total;
    cpu.applyConfig(hw::cpuConfig("B3"));
    const Watts b3 = cpu.power(hfe, 1.0).total;
    cpu.applyConfig(hw::cpuConfig("B4"));
    const Watts b4 = cpu.power(hfe, 1.0).total;
    cpu.applyConfig(hw::cpuConfig("OC3"));
    const Watts oc3 = cpu.power(hfe, 1.0).total;
    EXPECT_LT(b2, b3);
    EXPECT_LT(b3, b4);
    EXPECT_LT(b4, oc3);
}

TEST(CpuModel, B2PackagePowerNearTdp)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
    cpu.applyConfig(hw::cpuConfig("B2"));
    const auto breakdown = cpu.power(hfe, 1.0);
    // 255 W TDP part at all-core turbo, cooled in HFE-7000.
    EXPECT_NEAR(breakdown.total, 255.0, 15.0);
    EXPECT_GT(breakdown.leakage, 0.0);
    EXPECT_NEAR(breakdown.total,
                breakdown.core + breakdown.uncore + breakdown.memoryIo +
                    breakdown.leakage,
                1e-6);
}

TEST(CpuModel, ImmersionRunsCoolerThanAir)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
    cpu.applyConfig(hw::cpuConfig("B2"));
    EXPECT_LT(cpu.power(hfe, 1.0).tj, cpu.power(air, 1.0).tj);
}

TEST(CpuModel, SetClocksBeyondBoundaryIsFatal)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    hw::DomainClocks clocks{6.0, 2.4, 2.4};
    EXPECT_THROW(cpu.setClocks(clocks), FatalError);
}

TEST(CpuModel, LockedPartRejectsCustomOverclock)
{
    auto cpu = hw::CpuModel::skylake8180();
    hw::DomainClocks clocks{3.6, 2.4, 2.4};
    EXPECT_THROW(cpu.setClocks(clocks), FatalError);
}

// --- Counters and Eq. 1 ------------------------------------------------------

TEST(Counters, AdvanceAccumulates)
{
    hw::CounterBlock block(2.4);
    block.advance(10.0, 3.4, 0.5, 0.2);
    const auto sample = block.sample();
    EXPECT_NEAR(sample.aperf, 10.0 * 3.4 * 0.5, 1e-9);
    EXPECT_NEAR(sample.pperf, 10.0 * 3.4 * 0.5 * 0.8, 1e-9);
    EXPECT_NEAR(sample.tsc, 24.0, 1e-9);
}

TEST(Counters, ScalableFractionRecoversKappa)
{
    hw::CounterBlock block;
    const auto before = block.sample();
    block.advance(30.0, 3.4, 0.6, 0.25);
    const auto after = block.sample();
    EXPECT_NEAR(after.scalableFraction(before), 0.75, 1e-9);
}

TEST(Counters, UtilizationFromCounters)
{
    hw::CounterBlock block(2.4);
    const auto before = block.sample();
    block.advance(10.0, 3.4, 0.5, 0.0);
    const auto after = block.sample();
    EXPECT_NEAR(after.utilization(before, 3.4, 2.4), 0.5, 1e-9);
}

TEST(Counters, NoElapsedCyclesFallsBack)
{
    hw::CounterBlock block;
    const auto a = block.sample();
    block.advance(10.0, 3.4, 0.0, 0.0); // Fully idle.
    const auto b = block.sample();
    EXPECT_DOUBLE_EQ(b.scalableFraction(a, 0.42), 0.42);
}

TEST(Eq1, CpuBoundScalesInversely)
{
    // Fully scalable work: doubling the frequency halves utilization.
    EXPECT_NEAR(hw::predictedUtilization(0.6, 1.0, 2.0, 4.0), 0.3, 1e-12);
}

TEST(Eq1, MemoryBoundDoesNotScale)
{
    EXPECT_NEAR(hw::predictedUtilization(0.6, 0.0, 2.0, 4.0), 0.6, 1e-12);
}

TEST(Eq1, PaperFormula)
{
    // Util' = Util * (P/A * F0/F1 + (1 - P/A)).
    const double util = 0.5;
    const double pa = 0.7;
    EXPECT_NEAR(hw::predictedUtilization(util, pa, 3.4, 4.1),
                util * (pa * 3.4 / 4.1 + 0.3), 1e-12);
}

TEST(Eq1, InvalidInputsAreFatal)
{
    EXPECT_THROW(hw::predictedUtilization(-0.1, 0.5, 1.0, 2.0), FatalError);
    EXPECT_THROW(hw::predictedUtilization(0.5, 1.5, 1.0, 2.0), FatalError);
    EXPECT_THROW(hw::predictedUtilization(0.5, 0.5, 0.0, 2.0), FatalError);
}

// --- GPU ----------------------------------------------------------------------

TEST(Gpu, BaseSustainsItsTurbo)
{
    hw::GpuModel gpu;
    EXPECT_NEAR(gpu.sustainedCoreClock(0.75), 1.950, 1e-9);
}

TEST(Gpu, Ocg1LiftsClockAtSamePowerLimit)
{
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG1"));
    EXPECT_NEAR(gpu.sustainedCoreClock(0.75), 2.085, 1e-9);
    // Board power stays within the 250 W limit.
    EXPECT_LE(gpu.power(0.75).total, 250.0 + 1e-6);
}

TEST(Gpu, PaperPowerCalibration)
{
    // Fig. 11: baseline runs drew ~193 W; the overclocked runs peaked at
    // ~231 W (+19 %).
    hw::GpuModel gpu;
    const Watts base = gpu.power(0.75).total;
    EXPECT_NEAR(base, 193.0, 8.0);
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    const Watts oc = gpu.power(0.75).total;
    EXPECT_NEAR(oc / base, 1.19, 0.05);
}

TEST(Gpu, MemoryOverclockAddsPower)
{
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG2"));
    const Watts ocg2 = gpu.power(0.75).total;
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    const Watts ocg3 = gpu.power(0.75).total;
    EXPECT_GT(ocg3, ocg2);
}

TEST(Gpu, PowerLimitClipsAtFullActivity)
{
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG2"));
    // At activity 1.0 the 100 mV offset pushes the core past its budget.
    const auto breakdown = gpu.power(1.0);
    EXPECT_LE(breakdown.total, 300.0 + 1e-6);
}

TEST(Gpu, InvalidActivityIsFatal)
{
    hw::GpuModel gpu;
    EXPECT_THROW(gpu.sustainedCoreClock(1.5), FatalError);
}

} // namespace
} // namespace imsim
