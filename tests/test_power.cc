/**
 * @file
 * Unit tests for the power substrate: V-f curve anchors, the coupled
 * socket power/temperature solve (Sec. IV's 205 W -> ~300 W overclock
 * point and the ~11 W leakage saving), whole-server budget (Sec. III's
 * 700 W blade), facility PUE accounting (the 182 W savings breakdown),
 * and power capping.
 */

#include <gtest/gtest.h>

#include "power/capping.hh"
#include "power/facility.hh"
#include "power/server_power.hh"
#include "power/socket_power.hh"
#include "power/vf_curve.hh"
#include "thermal/cooling.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using power::OperatingPoint;
using power::SocketPowerModel;
using power::VfCurve;

TEST(VfCurve, PaperAnchors)
{
    const VfCurve curve = VfCurve::xeonW3175x();
    EXPECT_DOUBLE_EQ(curve.voltageFor(3.4), 0.90);
    // +23 % frequency requires 0.98 V (Sec. IV "Lifetime").
    EXPECT_NEAR(curve.voltageFor(3.4 * 1.23), 0.98, 1e-9);
    EXPECT_NEAR(curve.frequencyFor(0.98), 3.4 * 1.23, 1e-9);
}

TEST(VfCurve, FloorAtLowFrequency)
{
    const VfCurve curve = VfCurve::xeonW3175x();
    EXPECT_DOUBLE_EQ(curve.voltageFor(0.8), 0.70);
}

TEST(VfCurve, MarginIsSignedDistanceFromCurve)
{
    const VfCurve curve = VfCurve::xeonW3175x();
    EXPECT_NEAR(curve.margin(3.4, 0.95), 0.05, 1e-12);
    EXPECT_LT(curve.margin(4.5, 0.90), 0.0);
}

TEST(VfCurve, InvalidParametersAreFatal)
{
    EXPECT_THROW(VfCurve(0.0, 0.9, 0.1), FatalError);
    EXPECT_THROW(VfCurve(3.4, 0.9, -0.1), FatalError);
    const VfCurve curve = VfCurve::xeonW3175x();
    EXPECT_THROW(curve.voltageFor(0.0), FatalError);
}

TEST(SocketPower, NominalPointMatchesTdp)
{
    // Table III: the server Skylake sustains its all-core turbo at
    // ~204.4 W in air.
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    thermal::AirCooling air;
    const auto sol = socket.solve({3.1, 0.90, 1.0}, air);
    EXPECT_TRUE(sol.converged);
    EXPECT_NEAR(sol.total, 204.4, 2.5);
    EXPECT_NEAR(sol.tj, 92.0, 1.0);
}

TEST(SocketPower, OverclockPointAddsRoughly100W)
{
    // Sec. IV: 0.90 V -> 0.98 V and +23 % frequency lifts the package
    // from ~205 W toward ~305 W (the paper assumes +100 W; the V^3*f
    // model lands within ~10 %).
    const auto socket = SocketPowerModel::skylakeServer(2.6);
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    const auto nominal = socket.solve({2.6, 0.90, 1.0}, fc);
    const auto oc = socket.solve({2.6 * 1.23, 0.98, 1.0}, fc);
    EXPECT_NEAR(oc.total - nominal.total, 100.0, 12.0);
    EXPECT_GT(oc.tj, nominal.tj);
}

TEST(SocketPower, LeakageSavingPerSocket)
{
    // Table III discussion: cooling the junction 17-22 C saves ~11 W of
    // static power per socket.
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    const Watts saving =
        socket.leakagePower(92.0) - socket.leakagePower(73.0);
    EXPECT_NEAR(saving, 11.0, 1.5);
}

TEST(SocketPower, ImmersionReducesTotalAtSameOperatingPoint)
{
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling fc(thermal::fc3284());
    const OperatingPoint op{3.1, 0.90, 1.0};
    EXPECT_LT(socket.solve(op, fc).total, socket.solve(op, air).total);
}

TEST(SocketPower, ActivityScalesDynamicOnly)
{
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    const OperatingPoint busy{3.1, 0.90, 1.0};
    const OperatingPoint half{3.1, 0.90, 0.5};
    EXPECT_NEAR(socket.dynamicPower(half), socket.dynamicPower(busy) * 0.5,
                1e-9);
    thermal::AirCooling air;
    // Leakage persists at idle.
    const auto idle = socket.solve({3.1, 0.90, 0.0}, air);
    EXPECT_GT(idle.total, 30.0);
}

TEST(SocketPower, MaxFrequencyReproducesTableIiiTurbo)
{
    thermal::AirCooling air8168;
    thermal::TwoPhaseImmersionCooling fc_plate(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::CopperPlate});
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    const GHz f_air = socket.maxFrequencyAtPowerLimit(205.0, air8168);
    const GHz f_2pic = socket.maxFrequencyAtPowerLimit(205.0, fc_plate);
    // The 2PIC leakage saving buys about one 100 MHz bin.
    EXPECT_GT(f_2pic, f_air);
    EXPECT_NEAR(f_2pic - f_air, 0.1, 0.08);
}

TEST(SocketPower, MaxFrequencyMonotonicInLimit)
{
    thermal::AirCooling air;
    const auto socket = SocketPowerModel::skylakeServer(3.1);
    GHz prev = 0.0;
    for (Watts limit = 100.0; limit <= 400.0; limit += 50.0) {
        const GHz f = socket.maxFrequencyAtPowerLimit(limit, air);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(ServerPower, OpenComputeBladeBudgetIs700WInAir)
{
    // Sec. III: 410 W CPUs + 120 W memory + 26 W motherboard + 30 W FPGA
    // + 72 W storage + 42 W fans = 700 W.
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    const auto breakdown = server.compute({2.6, 0.90, 1.0}, air);
    EXPECT_NEAR(breakdown.sockets, 410.0, 10.0);
    EXPECT_DOUBLE_EQ(breakdown.memory, 120.0);
    EXPECT_DOUBLE_EQ(breakdown.fans, 42.0);
    EXPECT_DOUBLE_EQ(breakdown.other, 26.0 + 30.0 + 72.0);
    EXPECT_NEAR(breakdown.total, 700.0, 12.0);
}

TEST(ServerPower, ImmersionRemovesFans)
{
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    thermal::TwoPhaseImmersionCooling fc(thermal::fc3284());
    const auto breakdown = server.compute({2.6, 0.90, 1.0}, fc);
    EXPECT_DOUBLE_EQ(breakdown.fans, 0.0);
}

TEST(ServerPower, MemoryPowerScalesWithClock)
{
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    thermal::TwoPhaseImmersionCooling fc(thermal::fc3284());
    const auto base = server.compute({2.6, 0.90, 1.0}, fc, 2.4);
    const auto oc = server.compute({2.6, 0.90, 1.0}, fc, 3.0);
    EXPECT_NEAR(oc.memory / base.memory, 3.0 / 2.4, 1e-9);
}

TEST(Facility, PueMultipliesItPower)
{
    power::Facility evaporative(thermal::CoolingTech::DirectEvaporative);
    EXPECT_DOUBLE_EQ(evaporative.facilityPowerPeak(700.0), 840.0);
    EXPECT_NEAR(evaporative.overheadPeak(700.0), 140.0, 1e-9);
    power::Facility two_phase(thermal::CoolingTech::Immersion2P);
    EXPECT_DOUBLE_EQ(two_phase.facilityPowerPeak(700.0), 721.0);
}

TEST(Facility, PaperSavingsDecomposition)
{
    // Sec. IV: 2 x 11 W static + 42 W fans + ~118 W PUE = ~182 W.
    const auto savings = power::immersionSavings(700.0, 42.0, 11.0, 2);
    EXPECT_DOUBLE_EQ(savings.staticTotal, 22.0);
    EXPECT_DOUBLE_EQ(savings.fans, 42.0);
    EXPECT_NEAR(savings.pueOverhead, 118.0, 2.0);
    EXPECT_NEAR(savings.total, 182.0, 3.0);
}

TEST(RaplCapper, PassesWhenUnderLimit)
{
    power::RaplCapper capper(200.0);
    const auto power_at = [](GHz f) { return 50.0 * f; };
    EXPECT_DOUBLE_EQ(capper.clamp(3.0, power_at), 3.0);
}

TEST(RaplCapper, ClampsToLimit)
{
    power::RaplCapper capper(200.0);
    const auto power_at = [](GHz f) { return 50.0 * f; };
    EXPECT_NEAR(capper.clamp(6.0, power_at), 4.0, 0.01);
}

TEST(RaplCapper, FloorsAtMinimumFrequency)
{
    power::RaplCapper capper(10.0, 1.0);
    const auto power_at = [](GHz f) { return 50.0 * f; };
    EXPECT_DOUBLE_EQ(capper.clamp(6.0, power_at), 1.0);
}

TEST(RaplCapper, LimitCanBeRaisedForOverclocking)
{
    power::RaplCapper capper(205.0);
    capper.setPowerLimit(305.0);
    EXPECT_DOUBLE_EQ(capper.powerLimit(), 305.0);
    EXPECT_THROW(capper.setPowerLimit(0.0), FatalError);
}

TEST(PowerBudget, NoCappingUnderCapacity)
{
    power::PowerBudget budget(1000.0, 1.2);
    std::vector<power::PowerConsumer> consumers{
        {"a", 400.0, 100.0, 1}, {"b", 500.0, 100.0, 2}};
    EXPECT_FALSE(budget.breached(consumers));
    const auto alloc = budget.allocate(consumers);
    EXPECT_DOUBLE_EQ(alloc[0].granted, 400.0);
    EXPECT_DOUBLE_EQ(alloc[1].granted, 500.0);
    EXPECT_FALSE(alloc[0].capped);
}

TEST(PowerBudget, LowPriorityCappedFirst)
{
    power::PowerBudget budget(1000.0, 1.5);
    std::vector<power::PowerConsumer> consumers{
        {"batch", 600.0, 200.0, 1}, {"latency", 600.0, 200.0, 2}};
    EXPECT_TRUE(budget.breached(consumers));
    const auto alloc = budget.allocate(consumers);
    // Latency keeps its demand; batch absorbs the whole cut.
    EXPECT_DOUBLE_EQ(alloc[1].granted, 600.0);
    EXPECT_FALSE(alloc[1].capped);
    EXPECT_NEAR(alloc[0].granted, 400.0, 1e-9);
    EXPECT_TRUE(alloc[0].capped);
}

TEST(PowerBudget, MarginalClassScaledUniformly)
{
    power::PowerBudget budget(900.0);
    std::vector<power::PowerConsumer> consumers{
        {"a", 400.0, 100.0, 1},
        {"b", 400.0, 100.0, 1},
        {"crit", 300.0, 100.0, 2}};
    const auto alloc = budget.allocate(consumers);
    EXPECT_DOUBLE_EQ(alloc[2].granted, 300.0);
    // 600 W left for a+b whose demands total 800 W above 200 W minimums.
    EXPECT_NEAR(alloc[0].granted, 300.0, 1e-6);
    EXPECT_NEAR(alloc[0].granted, alloc[1].granted, 1e-9);
}

TEST(PowerBudget, BrownoutIsFatal)
{
    power::PowerBudget budget(100.0);
    std::vector<power::PowerConsumer> consumers{{"a", 300.0, 200.0, 1}};
    EXPECT_THROW(budget.allocate(consumers), FatalError);
}

TEST(PowerBudget, AllocationsNeverExceedCapacity)
{
    power::PowerBudget budget(1000.0, 1.4);
    std::vector<power::PowerConsumer> consumers{
        {"a", 500.0, 50.0, 1}, {"b", 500.0, 50.0, 2},
        {"c", 400.0, 50.0, 3}};
    const auto alloc = budget.allocate(consumers);
    double total = 0.0;
    for (const auto &grant : alloc)
        total += grant.granted;
    EXPECT_LE(total, 1000.0 + 1e-6);
}

TEST(PowerBudget, OversubscriptionRatioValidation)
{
    EXPECT_THROW(power::PowerBudget(1000.0, 0.9), FatalError);
    power::PowerBudget budget(1000.0, 1.25);
    EXPECT_DOUBLE_EQ(budget.provisionable(), 1250.0);
}

// ---------------------------------------------------------------------
// allocate() edge cases at the marginal priority class, plus the
// scratch-space overload's equivalence with the legacy interface.
// ---------------------------------------------------------------------

// Consumers tied at the marginal class's priority are scaled by one
// common fraction, regardless of their position in the input vector.
TEST(PowerBudget, TiedPrioritiesAtMarginalClassShareOneFraction)
{
    power::PowerBudget budget(1000.0, 1.5);
    std::vector<power::PowerConsumer> consumers{
        {"tied_a", 400.0, 100.0, 1},
        {"crit", 300.0, 100.0, 2},
        {"tied_b", 600.0, 100.0, 1}};
    const auto alloc = budget.allocate(consumers);
    // crit restores fully; 600 W remain for the tied class's minimums
    // (200 W) plus a uniform share of its 800 W restorable extra.
    EXPECT_DOUBLE_EQ(alloc[1].granted, 300.0);
    EXPECT_FALSE(alloc[1].capped);
    const double frac_a = (alloc[0].granted - 100.0) / 300.0;
    const double frac_b = (alloc[2].granted - 100.0) / 500.0;
    EXPECT_NEAR(frac_a, frac_b, 1e-12);
    EXPECT_TRUE(alloc[0].capped);
    EXPECT_TRUE(alloc[2].capped);
    EXPECT_NEAR(alloc[0].granted + alloc[1].granted + alloc[2].granted,
                1000.0, 1e-9);
}

// A class with zero restorable extra (demand == minimum) passes through
// the restore walk without dividing by its zero extra.
TEST(PowerBudget, ZeroRestorableExtraClassIsHandled)
{
    power::PowerBudget budget(700.0, 1.5);
    std::vector<power::PowerConsumer> consumers{
        {"flat", 200.0, 200.0, 3},  // demand == minimum: no extra.
        {"mid", 350.0, 100.0, 2},
        {"low", 400.0, 100.0, 1}};
    const auto alloc = budget.allocate(consumers);
    EXPECT_DOUBLE_EQ(alloc[0].granted, 200.0);
    EXPECT_FALSE(alloc[0].capped);
    EXPECT_DOUBLE_EQ(alloc[1].granted, 350.0);
    EXPECT_FALSE(alloc[1].capped);
    // 50 W of room left for low's 300 W extra above its 100 W minimum.
    EXPECT_NEAR(alloc[2].granted, 150.0, 1e-9);
    EXPECT_TRUE(alloc[2].capped);
}

// When a class's restorable extra equals the remaining room exactly,
// it restores fully (the <= branch) and is not reported as capped.
TEST(PowerBudget, ExactFitClassExtraEqualsRoom)
{
    power::PowerBudget budget(1000.0, 1.5);
    std::vector<power::PowerConsumer> consumers{
        {"low", 300.0, 100.0, 1},
        {"exact", 500.0, 100.0, 2}, // extra 400 == room after crit.
        {"crit", 400.0, 100.0, 3}};
    const auto alloc = budget.allocate(consumers);
    EXPECT_DOUBLE_EQ(alloc[2].granted, 400.0);
    EXPECT_FALSE(alloc[2].capped);
    // Exact fit restores fully through the <=-room branch: not capped.
    EXPECT_DOUBLE_EQ(alloc[1].granted, 500.0);
    EXPECT_FALSE(alloc[1].capped);
    // Nothing left below the marginal class.
    EXPECT_DOUBLE_EQ(alloc[0].granted, 100.0);
    EXPECT_TRUE(alloc[0].capped);
}

// The scratch-space overload must return byte-identical grants to the
// legacy interface, under capacity as well as through the capped walk.
TEST(PowerBudget, ScratchOverloadMatchesLegacyByteForByte)
{
    const std::vector<std::vector<power::PowerConsumer>> scenarios{
        // Uncapped.
        {{"a", 300.0, 100.0, 1}, {"b", 200.0, 50.0, 2}},
        // Capped with ties and an exact-minimum consumer.
        {{"a", 400.0, 100.0, 1},
         {"b", 600.0, 100.0, 1},
         {"flat", 150.0, 150.0, 2},
         {"crit", 300.0, 100.0, 3}},
        // Single consumer forced to its minimum's class fraction.
        {{"solo", 1500.0, 400.0, 1}},
    };
    power::PowerBudget budget(1000.0, 1.4);
    power::AllocScratch scratch;
    for (const auto &consumers : scenarios) {
        const auto legacy = budget.allocate(consumers);
        budget.allocate(consumers, scratch, true);
        ASSERT_EQ(legacy.size(), consumers.size());
        ASSERT_EQ(scratch.granted.size(), consumers.size());
        for (std::size_t i = 0; i < consumers.size(); ++i) {
            // Bitwise equality, not approximate: the overloads must
            // run the same arithmetic in the same order.
            EXPECT_EQ(legacy[i].granted, scratch.granted[i]);
            EXPECT_EQ(legacy[i].capped, scratch.capped[i] != 0);
            EXPECT_EQ(legacy[i].name, consumers[i].name);
        }
    }
}

// validate=false skips the per-consumer input checks (the hot-path
// contract) but the brownout fatal stays armed.
TEST(PowerBudget, ScratchOverloadKeepsBrownoutFatalWithoutValidation)
{
    power::PowerBudget budget(100.0);
    std::vector<power::PowerConsumer> consumers{
        {"a", 300.0, 200.0, 1}};
    power::AllocScratch scratch;
    EXPECT_THROW(budget.allocate(consumers, scratch, false), FatalError);
    EXPECT_THROW(budget.allocate(consumers, scratch, true), FatalError);
}

// validate=true rejects malformed consumers in the scratch overload
// just like the legacy interface does.
TEST(PowerBudget, ScratchOverloadValidatesInputsWhenAsked)
{
    power::PowerBudget budget(1000.0);
    std::vector<power::PowerConsumer> consumers{
        {"bad", 100.0, 200.0, 1}}; // minimum > demand.
    power::AllocScratch scratch;
    EXPECT_THROW(budget.allocate(consumers, scratch, true), FatalError);
}

// The exact boundary where the floors just fit: minimum_total == cap is
// the last point before a brownout, and every consumer must land
// precisely on its minimum (no uniform-scaling rounding, no crash).
TEST(PowerBudget, FloorsExactlyFillingCapacityAreGrantedVerbatim)
{
    power::PowerBudget budget(600.0);
    const std::vector<power::PowerConsumer> consumers{
        {"a", 500.0, 250.0, 1}, {"b", 400.0, 200.0, 0},
        {"c", 300.0, 150.0, 2}};
    power::AllocScratch scratch;
    budget.allocate(consumers, scratch, true);
    EXPECT_DOUBLE_EQ(scratch.granted[0], 250.0);
    EXPECT_DOUBLE_EQ(scratch.granted[1], 200.0);
    EXPECT_DOUBLE_EQ(scratch.granted[2], 150.0);
    EXPECT_TRUE(scratch.capped[0]);
    EXPECT_TRUE(scratch.capped[1]);
    EXPECT_TRUE(scratch.capped[2]);
    EXPECT_EQ(budget.brownouts(), 0u); // Fits: not a brownout.
}

TEST(PowerBudget, RecoverableBrownoutScalesFloorsUniformly)
{
    power::PowerBudget budget(1000.0);
    budget.setRecoverableBrownout(true);
    budget.setCapacity(300.0); // Derated below the 400 W floor total.

    const std::vector<power::PowerConsumer> consumers{
        {"a", 400.0, 300.0, 1}, {"b", 200.0, 100.0, 0}};
    power::AllocScratch scratch;
    budget.allocate(consumers, scratch, true);
    EXPECT_EQ(budget.brownouts(), 1u);
    // Every floor scaled by cap / minimum_total = 300/400.
    EXPECT_DOUBLE_EQ(scratch.granted[0], 225.0);
    EXPECT_DOUBLE_EQ(scratch.granted[1], 75.0);
    EXPECT_TRUE(scratch.capped[0]);
    EXPECT_TRUE(scratch.capped[1]);
}

// A derated feed that later recovers must re-converge to full grants —
// the brownout path leaves no sticky state behind.
TEST(PowerBudget, CapacityLoweredAndRestoredReconverges)
{
    power::PowerBudget budget(1000.0, 1.2);
    budget.setRecoverableBrownout(true);
    const std::vector<power::PowerConsumer> consumers{
        {"a", 400.0, 300.0, 1}, {"b", 300.0, 200.0, 0}};
    power::AllocScratch scratch;

    budget.allocate(consumers, scratch, true);
    EXPECT_DOUBLE_EQ(scratch.granted[0], 400.0);
    EXPECT_DOUBLE_EQ(scratch.granted[1], 300.0);

    budget.setCapacity(250.0); // Brownout: floors total 500 W.
    EXPECT_DOUBLE_EQ(budget.provisionable(), 300.0); // Ratio is kept.
    budget.allocate(consumers, scratch, true);
    EXPECT_EQ(budget.brownouts(), 1u);
    EXPECT_DOUBLE_EQ(scratch.granted[0] + scratch.granted[1], 250.0);

    budget.setCapacity(600.0); // Partial recovery: floors fit, demand no.
    budget.allocate(consumers, scratch, true);
    EXPECT_EQ(budget.brownouts(), 1u);
    EXPECT_DOUBLE_EQ(scratch.granted[0] + scratch.granted[1], 600.0);
    EXPECT_GE(scratch.granted[0], 300.0);
    EXPECT_GE(scratch.granted[1], 200.0);

    budget.setCapacity(1000.0); // Full recovery: back to full demand.
    budget.allocate(consumers, scratch, true);
    EXPECT_EQ(budget.brownouts(), 1u);
    EXPECT_DOUBLE_EQ(scratch.granted[0], 400.0);
    EXPECT_DOUBLE_EQ(scratch.granted[1], 300.0);
    EXPECT_FALSE(scratch.capped[0]);
    EXPECT_FALSE(scratch.capped[1]);
}

} // namespace
} // namespace imsim
