/**
 * @file
 * Closed-loop control environment: determinism oracle across
 * --sim-threads, knob clamping, crisis survival, the PID/TCO
 * acceptance bar, and the regression pins for the autoscale boundary
 * and trace-generator fixes that shipped alongside the environment.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "autoscale/predictive.hh"
#include "control/controllers.hh"
#include "control/env.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/trace.hh"

using namespace imsim;
using imsim::FatalError;

namespace {

control::ControlEnvConfig
shortConfig(std::size_t sim_threads = 1)
{
    control::ControlEnvConfig cfg;
    cfg.days = 0.05; // 14 five-minute epochs.
    cfg.simThreads = sim_threads;
    return cfg;
}

fault::FaultPlan
shortCrises(double days)
{
    const Seconds horizon = days * 86400.0;
    fault::FaultPlan plan;
    plan.at(0.10 * horizon,
            {fault::FaultKind::ServerCrash, fault::kAnyServer, 0.0});
    plan.at(0.30 * horizon,
            {fault::FaultKind::ServerRepair, fault::kAnyServer, 0.0});
    plan.at(0.40 * horizon,
            {fault::FaultKind::PowerDerate, fault::kAnyServer, 0.7});
    plan.at(0.60 * horizon,
            {fault::FaultKind::PowerRestore, fault::kAnyServer, 0.0});
    plan.at(0.70 * horizon,
            {fault::FaultKind::CoolingDegrade, fault::kAnyServer, 0.5});
    plan.at(0.90 * horizon,
            {fault::FaultKind::CoolingRestore, fault::kAnyServer, 0.0});
    return plan;
}

/** A scripted action schedule that exercises every knob. */
control::Action
scriptedAction(std::size_t epoch, const control::ControlEnv &env)
{
    control::Action action;
    switch (epoch % 4) {
      case 0:
        action.frequencyCeiling = env.maxCeiling();
        break;
      case 1:
        action.frequencyCeiling = env.minCeiling();
        action.feedCapacity = 0.8 * env.config().feedCapacity;
        break;
      case 2:
        action.frequencyCeiling =
            0.5 * (env.minCeiling() + env.maxCeiling());
        action.packingFraction = 0.5;
        break;
      case 3:
        action.frequencyCeiling = env.maxCeiling();
        action.packingFraction = 0.75;
        break;
    }
    return action;
}

struct Episode
{
    std::vector<control::Observation> observations;
    control::ControlOutcome outcome;
};

Episode
runScripted(std::size_t sim_threads)
{
    control::ControlEnvConfig cfg = shortConfig(sim_threads);
    cfg.crises = shortCrises(cfg.days);
    util::Rng rng(4242);
    control::ControlEnv env(cfg, rng);
    Episode episode;
    env.act(scriptedAction(0, env));
    bool more = true;
    while (more) {
        more = env.step();
        episode.observations.push_back(env.observe());
        env.act(scriptedAction(env.epochsDone(), env));
    }
    episode.outcome = env.finish();
    return episode;
}

} // namespace

// ---- determinism oracle -------------------------------------------------

TEST(ControlEnv, BitIdenticalAcrossSimThreads)
{
    const Episode serial = runScripted(1);
    const Episode sharded = runScripted(8);

    ASSERT_EQ(serial.observations.size(), sharded.observations.size());
    for (std::size_t i = 0; i < serial.observations.size(); ++i) {
        const auto &a = serial.observations[i];
        const auto &b = sharded.observations[i];
        // Bitwise: the sharded minute loop and aggregator reductions
        // promise exact reproduction, not approximate agreement.
        EXPECT_EQ(a.maxTjC, b.maxTjC) << "epoch " << i;
        EXPECT_EQ(a.p99TjC, b.p99TjC) << "epoch " << i;
        EXPECT_EQ(a.meanTjC, b.meanTjC) << "epoch " << i;
        EXPECT_EQ(a.fleetPowerW, b.fleetPowerW) << "epoch " << i;
        EXPECT_EQ(a.meanUtil, b.meanUtil) << "epoch " << i;
        EXPECT_EQ(a.p99WearRatePerYear, b.p99WearRatePerYear)
            << "epoch " << i;
        EXPECT_EQ(a.tailP99S, b.tailP99S) << "epoch " << i;
        EXPECT_EQ(a.epochRequests, b.epochRequests) << "epoch " << i;
        EXPECT_EQ(a.epochEnergyKwh, b.epochEnergyKwh) << "epoch " << i;
        EXPECT_EQ(a.epochCostUsd, b.epochCostUsd) << "epoch " << i;
        EXPECT_EQ(a.meanFrequencyGhz, b.meanFrequencyGhz)
            << "epoch " << i;
        EXPECT_EQ(a.frequencyCeilingGhz, b.frequencyCeilingGhz)
            << "epoch " << i;
        EXPECT_EQ(a.feedCapacityW, b.feedCapacityW) << "epoch " << i;
        EXPECT_EQ(a.crashedVms, b.crashedVms) << "epoch " << i;
    }
    EXPECT_EQ(serial.outcome.p99LatencyS, sharded.outcome.p99LatencyS);
    EXPECT_EQ(serial.outcome.requests, sharded.outcome.requests);
    EXPECT_EQ(serial.outcome.energyMwh, sharded.outcome.energyMwh);
    EXPECT_EQ(serial.outcome.totalCostUsd, sharded.outcome.totalCostUsd);
    EXPECT_EQ(serial.outcome.wearConsumed, sharded.outcome.wearConsumed);
    EXPECT_EQ(serial.outcome.maxTjC, sharded.outcome.maxTjC);
}

TEST(ControlEnv, SameSeedSameActionsReproduce)
{
    const Episode a = runScripted(1);
    const Episode b = runScripted(1);
    EXPECT_EQ(a.outcome.totalCostUsd, b.outcome.totalCostUsd);
    EXPECT_EQ(a.outcome.p99LatencyS, b.outcome.p99LatencyS);
    EXPECT_EQ(a.outcome.requests, b.outcome.requests);
}

// ---- environment semantics ----------------------------------------------

TEST(ControlEnv, EpochAccountingAndHorizon)
{
    util::Rng rng(7);
    control::ControlEnv env(shortConfig(), rng);
    EXPECT_EQ(env.totalEpochs(), 14u);
    EXPECT_EQ(env.epochsDone(), 0u);
    EXPECT_EQ(env.observe().t, 0.0);

    std::size_t steps = 0;
    while (env.step())
        ++steps;
    EXPECT_EQ(steps + 1, env.totalEpochs());
    EXPECT_EQ(env.epochsDone(), env.totalEpochs());
    const auto outcome = env.finish();
    EXPECT_EQ(outcome.epochs, 14u);
    EXPECT_GT(outcome.requests, 0u);
    EXPECT_GT(outcome.energyMwh, 0.0);
    EXPECT_GT(outcome.p99LatencyS, 0.0);
    // Stepping or finishing past the horizon is a caller bug.
    EXPECT_THROW(env.step(), FatalError);
    EXPECT_THROW(env.finish(), FatalError);
}

TEST(ControlEnv, ActionsAreClampedToBounds)
{
    util::Rng rng(11);
    control::ControlEnv env(shortConfig(), rng);

    control::Action wild;
    wild.frequencyCeiling = 99.0;
    wild.feedCapacity = 1.0;      // Far below the capping floors.
    wild.packingFraction = 1e-6;  // Below the configured minimum.
    env.act(wild);
    env.step();
    const auto &obs = env.observe();
    EXPECT_EQ(obs.frequencyCeilingGhz, env.maxCeiling());
    EXPECT_GE(obs.feedCapacityW, 1.0);
    EXPECT_LT(obs.feedCapacityW, env.config().feedCapacity);
    EXPECT_EQ(obs.packingFraction, env.config().minPackingFraction);

    control::Action low;
    low.frequencyCeiling = 0.1;
    env.act(low);
    env.step();
    EXPECT_EQ(env.observe().frequencyCeilingGhz, env.minCeiling());
}

TEST(ControlEnv, SurvivesScriptedCrises)
{
    control::ControlEnvConfig cfg = shortConfig();
    cfg.crises = shortCrises(cfg.days);
    util::Rng rng(21);
    control::ControlEnv env(cfg, rng);

    control::Action full;
    full.frequencyCeiling = env.maxCeiling();
    env.act(full);

    bool saw_crash = false;
    bool saw_derate = false;
    bool saw_cooling_clamp = false;
    bool more = true;
    while (more) {
        more = env.step();
        const auto &obs = env.observe();
        saw_crash = saw_crash || obs.crashedVms > 0;
        saw_derate = saw_derate || obs.powerDerateFraction < 1.0;
        if (obs.coolingDegraded) {
            // The action asks for full overclock every epoch; a
            // degraded tank overrides it to the nominal point.
            EXPECT_EQ(obs.frequencyCeilingGhz, env.minCeiling());
            saw_cooling_clamp = true;
        }
        if (obs.powerDerateFraction < 1.0) {
            EXPECT_LE(obs.feedCapacityW,
                      obs.powerDerateFraction *
                          env.config().feedCapacity);
        }
        env.act(full);
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_derate);
    EXPECT_TRUE(saw_cooling_clamp);

    const auto outcome = env.finish();
    EXPECT_GT(outcome.requests, 0u);
    // Every VM was repaired, so the run ends with a whole cluster.
    EXPECT_EQ(env.observe().crashedVms, 0u);
}

TEST(ControlEnv, FrequencyCeilingMovesDeliveredClockAndPower)
{
    // Two identical envs, one pinned nominal and one pinned at the
    // overclock point: the overclocked fleet must deliver a higher
    // mean clock and draw more power over the same traces.
    auto runPinned = [](GHz target) {
        control::ControlEnvConfig cfg = shortConfig();
        util::Rng rng(33);
        control::ControlEnv env(cfg, rng);
        control::Action action;
        action.frequencyCeiling = target;
        env.act(action);
        double freq_sum = 0.0;
        bool more = true;
        std::size_t epochs = 0;
        while (more) {
            more = env.step();
            freq_sum += env.observe().meanFrequencyGhz;
            ++epochs;
            env.act(action);
        }
        const auto outcome = env.finish();
        return std::make_pair(freq_sum / static_cast<double>(epochs),
                              outcome.energyMwh);
    };
    const auto nominal = runPinned(0.0);   // Clamped up to minCeiling.
    const auto overclocked = runPinned(99.0);
    EXPECT_GT(overclocked.first, nominal.first);
    EXPECT_GT(overclocked.second, nominal.second);
}

// ---- controllers --------------------------------------------------------

TEST(Controllers, PidHoldsTjBandAndModulates)
{
    control::ControlEnvConfig cfg;
    cfg.days = 1.0;
    util::Rng rng(7001);
    control::ControlEnv env(cfg, rng);
    const Celsius setpoint = 66.0;
    control::PidTjController pid(setpoint, env.minCeiling(),
                                 env.maxCeiling());

    std::size_t epochs = 0;
    std::size_t in_band = 0;
    bool modulated = false;
    env.act(pid.decide(env.observe()));
    bool more = true;
    while (more) {
        more = env.step();
        const auto &obs = env.observe();
        ++epochs;
        if (obs.maxTjC <= setpoint + 2.5)
            ++in_band;
        if (obs.frequencyCeilingGhz < env.maxCeiling() - 1e-9 &&
            obs.frequencyCeilingGhz > env.minCeiling() + 1e-9)
            modulated = true;
        env.act(pid.decide(env.observe()));
    }
    env.finish();
    // The servo keeps the hottest junction at or under the setpoint
    // band in (nearly) every epoch; single-minute burst transients the
    // epoch-level loop cannot preempt are allowed in the remainder.
    EXPECT_GE(static_cast<double>(in_band) /
                  static_cast<double>(epochs),
              0.95);
    EXPECT_TRUE(modulated);
}

TEST(Controllers, PidMatchesOcAOnTcoWithLowerWear)
{
    // The bench's acceptance bar: over a full diurnal day the PID must
    // match or beat always-overclock on cost per request while
    // consuming less lifetime (it backs off when thermals say the
    // marginal speedup is not worth the wear).
    auto runWith = [](control::Controller &controller) {
        control::ControlEnvConfig cfg;
        cfg.days = 1.0;
        util::Rng rng(7001);
        control::ControlEnv env(cfg, rng);
        return control::runEpisode(env, controller);
    };
    control::ControlEnvConfig probe;
    util::Rng rng(7001);
    control::ControlEnv env(probe, rng);
    const GHz floor = env.minCeiling();
    const GHz cap = env.maxCeiling();

    control::StaticOcController oca(
        control::StaticOcController::Mode::OcA, floor, cap);
    control::PidTjController pid(66.0, floor, cap);
    const auto oca_out = runWith(oca);
    const auto pid_out = runWith(pid);

    EXPECT_LE(pid_out.costPerMRequestsUsd, oca_out.costPerMRequestsUsd);
    EXPECT_LT(pid_out.wearConsumed, oca_out.wearConsumed);
}

TEST(Controllers, LadderControllersStayInsideTheEnvelope)
{
    control::ControlEnvConfig cfg = shortConfig();
    util::Rng rng(55);
    control::ControlEnv env(cfg, rng);
    control::GreedyTcoController greedy(env.minCeiling(),
                                        env.maxCeiling());
    control::BanditController bandit(env.minCeiling(), env.maxCeiling(),
                                     /*seed=*/99);
    control::Observation obs = env.observe();
    for (int i = 0; i < 50; ++i) {
        obs.t = static_cast<double>(i) * 300.0;
        obs.epochRequests = 1000.0;
        obs.epochCostUsd = 0.05 + 0.01 * static_cast<double>(i % 3);
        obs.tailP99S = (i % 5 == 0) ? 10.0 : 0.5;
        const auto ga = greedy.decide(obs);
        const auto ba = bandit.decide(obs);
        EXPECT_GE(ga.frequencyCeiling, env.minCeiling());
        EXPECT_LE(ga.frequencyCeiling, env.maxCeiling());
        EXPECT_GE(ba.frequencyCeiling, env.minCeiling());
        EXPECT_LE(ba.frequencyCeiling, env.maxCeiling());
    }
}

TEST(Controllers, StaticOcBFollowsTheClock)
{
    control::StaticOcController ocb(
        control::StaticOcController::Mode::OcB, 2.7, 3.32);
    control::Observation obs;
    obs.t = 3.0 * 3600.0; // 03:00 — off-peak.
    EXPECT_EQ(ocb.decide(obs).frequencyCeiling, 3.32);
    obs.t = 16.0 * 3600.0; // 16:00 — the documented peak.
    EXPECT_EQ(ocb.decide(obs).frequencyCeiling, 2.7);
    obs.t = 23.0 * 3600.0; // 23:00 — off-peak again.
    EXPECT_EQ(ocb.decide(obs).frequencyCeiling, 3.32);
}

// ---- regression pins for the satellite fixes ----------------------------

TEST(PlanProactive, BreachExactlyAtScaleOutLatencyIsCovered)
{
    autoscale::HoltForecaster forecaster(0.4, 0.2);
    forecaster.observe(0.0, 0.50);
    forecaster.observe(10.0, 0.60);
    ASSERT_GT(forecaster.trend(), 0.0);

    // Pick the threshold so the forecast crosses it somewhere inside
    // the horizon, then read the predicted breach back and re-plan
    // with the scale-out latency equal to it: the VM lands with zero
    // slack, so both the scale-out and the overclock bridge must fire
    // (before the fix the bridge used a strict < and skipped the ==
    // case, leaving exactly-zero-slack breaches uncovered).
    const double threshold = forecaster.forecast(100.0);
    const auto probe =
        autoscale::planProactive(forecaster, threshold,
                                 /*scale_out_latency=*/1.0,
                                 /*horizon=*/1000.0);
    ASSERT_GE(probe.predictedBreach, 0.0);

    const auto at_boundary = autoscale::planProactive(
        forecaster, threshold, probe.predictedBreach, 1000.0);
    EXPECT_TRUE(at_boundary.scaleOutNow);
    EXPECT_TRUE(at_boundary.overclockBridge);
    // The two decisions share one boundary sense: they can never
    // disagree, at the boundary or anywhere else.
    EXPECT_EQ(at_boundary.scaleOutNow, at_boundary.overclockBridge);

    const auto before_boundary = autoscale::planProactive(
        forecaster, threshold, 0.99 * probe.predictedBreach, 1000.0);
    EXPECT_FALSE(before_boundary.scaleOutNow);
    EXPECT_FALSE(before_boundary.overclockBridge);
    EXPECT_EQ(before_boundary.scaleOutNow,
              before_boundary.overclockBridge);
}

TEST(HoltForecaster, DuplicateTimestampIsFatal)
{
    autoscale::HoltForecaster forecaster(0.4, 0.2);
    forecaster.observe(5.0, 1.0);
    EXPECT_THROW(forecaster.observe(5.0, 2.0), FatalError);
    EXPECT_THROW(forecaster.observe(4.0, 2.0), FatalError);
}

TEST(HoltForecaster, NearZeroDtDoesNotExplodeTheTrend)
{
    autoscale::HoltForecaster forecaster(0.4, 0.2);
    forecaster.observe(0.0, 1.0);
    forecaster.observe(10.0, 2.0);
    const double trend_before = forecaster.trend();
    ASSERT_GT(trend_before, 0.0);

    // A sample 1 ns later: the per-second slope against such a dt
    // would be ~1e9x the real trend; the guard keeps the trend put and
    // lets the level absorb the sample.
    forecaster.observe(10.0 + 1e-9, 5.0);
    EXPECT_EQ(forecaster.trend(), trend_before);
    EXPECT_GT(forecaster.level(), 2.0 * 0.4); // Level still updated.

    // A normally spaced successor keeps working.
    forecaster.observe(20.0, 3.0);
    EXPECT_TRUE(std::isfinite(forecaster.trend()));
    EXPECT_TRUE(std::isfinite(forecaster.forecast(60.0)));
}

TEST(TraceGenerator, DiurnalPeakAtSixteenHundred)
{
    workload::TraceParams params;
    params.cores = 32;
    params.meanUtil = 0.45;
    params.diurnalAmplitude = 0.2;
    params.weekendDip = 0.0;
    params.noiseSigma = 0.0; // Deterministic: the pure diurnal shape.
    params.burstProb = 0.0;
    params.sampleInterval = 60.0;
    workload::TraceGenerator generator(params);
    util::Rng rng(1);
    const auto trace = generator.generate(rng, 1.0);
    ASSERT_EQ(trace.size(), 1440u);

    std::size_t argmax = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].utilization > trace[argmax].utilization)
            argmax = i;
    }
    // Documented peak: 16:00, +/- 30 minutes.
    const double peak_s = trace[argmax].time;
    EXPECT_NEAR(peak_s, 16.0 * 3600.0, 30.0 * 60.0);

    // And the trough lands twelve hours opposite, at 04:00.
    std::size_t argmin = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].utilization < trace[argmin].utilization)
            argmin = i;
    }
    EXPECT_NEAR(trace[argmin].time, 4.0 * 3600.0, 30.0 * 60.0);
}

TEST(TraceGenerator, NonDivisibleSampleIntervalKeepsFinalSample)
{
    workload::TraceParams params;
    params.cores = 8;
    params.sampleInterval = 7.0; // 86400 / 7 = 12342.857...
    workload::TraceGenerator generator(params);
    util::Rng rng(2);
    const auto trace = generator.generate(rng, 1.0);
    // Rounded up: the final partial interval is sampled, not dropped.
    EXPECT_EQ(trace.size(), 12343u);
    EXPECT_LT(trace.back().time, 86400.0);
    EXPECT_GE(trace.back().time, 86400.0 - 7.0);

    // Exact multiples stay exact (no spurious extra sample).
    params.sampleInterval = 60.0;
    workload::TraceGenerator exact(params);
    EXPECT_EQ(exact.generate(rng, 1.0).size(), 1440u);
}
