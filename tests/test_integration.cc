/**
 * @file
 * Integration tests spanning modules: the full stack from tank to
 * control plane, Eq. 1's closed loop against the queueing simulation,
 * the oversubscription economics pipeline, and end-to-end determinism.
 */

#include <gtest/gtest.h>

#include "autoscale/experiment.hh"
#include "cluster/packing.hh"
#include "core/bottleneck.hh"
#include "core/controller.hh"
#include "core/usecases.hh"
#include "hw/cpu.hh"
#include "power/server_power.hh"
#include "reliability/lifetime.hh"
#include "tco/tco.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"
#include "vm/hypervisor.hh"
#include "workload/perf.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace {

TEST(Integration, TankToControllerPipeline)
{
    // Immerse the W-3175X in small tank #1, wire up the full control
    // plane, and request the paper's headline overclock.
    auto tank = thermal::makeSmallTank1();
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("OC1"));

    const auto &cooling = tank.coolingSystem();
    // Evaluate at the activity the workload actually runs at, so the
    // wear accrual below matches the condition the controller approved.
    const auto breakdown = cpu.power(cooling, 0.7);
    tank.setHeatLoad(0, breakdown.total);
    EXPECT_TRUE(tank.condenserKeepsUp());

    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog;
    power::RaplCapper budget(500.0);
    core::OverclockController controller(cpu, cooling, tracker, watchdog,
                                         budget);
    const auto decision = controller.request(4.1, 24.0, 0.7, 0.0);
    EXPECT_TRUE(decision.approved) << decision.reason;

    // Accrue a day of the granted stress and confirm the part remains on
    // its design budget.
    reliability::StressCondition cond;
    cond.voltage = cpu.coreVoltage();
    cond.tjMax = breakdown.tj;
    cond.tMin = 35.0;
    cond.freqRatio = decision.grantedRatio;
    cond.dutyCycle = 0.7;
    tracker.accrue(cond, 1.0 / 365.0);
    EXPECT_GE(tracker.credit(), -1e-6);
}

TEST(Integration, Eq1PredictionMatchesQueueingSimulation)
{
    // The validation loop of Fig. 15, condensed: measure utilization and
    // P/A from the cluster's counters, predict the post-change
    // utilization with Eq. 1, apply the change, and compare.
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    params.kappa = 0.85;
    workload::QueueingCluster cluster(sim, util::Rng(31), params);
    const std::size_t id = cluster.addServer(3.4);
    cluster.setArrivalRate(900.0);
    sim.runUntil(200.0);

    const auto before = cluster.counters(id);
    sim.runUntil(230.0);
    const auto after = cluster.counters(id);
    const double p_over_a = after.scalableFraction(before);
    const double util0 = cluster.utilization(id, 30.0);

    const double predicted =
        hw::predictedUtilization(util0, p_over_a, 3.4, 4.1);
    cluster.setFrequency(id, 4.1);
    sim.runUntil(500.0);
    const double observed = cluster.utilization(id, 60.0);
    EXPECT_NEAR(observed, predicted, 0.035);
}

TEST(Integration, BottleneckPlanMatchesHypervisorOutcome)
{
    // The analyzer's recommended config should outperform a mismatched
    // one on the actual oversubscribed simulation.
    const auto &sql = workload::app("SQL");
    const core::BottleneckAnalyzer analyzer;
    const auto &recommended = analyzer.configForApp(sql); // OC3.
    const auto &mismatched = hw::cpuConfig("OC1");

    auto run = [&](const hw::CpuConfig &config) {
        vm::HypervisorSim hyper(
            12, {config.core, config.llc, config.memory}, util::Rng(32));
        for (int i = 0; i < 4; ++i)
            hyper.addLatencyVm(sql, 500.0);
        hyper.run(20.0);
        hyper.resetStats();
        hyper.run(60.0);
        double total = 0.0;
        for (const auto &res : hyper.results())
            total += res.p95Latency;
        return total / 4.0;
    };
    EXPECT_LT(run(recommended), run(mismatched));
}

TEST(Integration, PackingDensityFeedsTco)
{
    // Sec. VI-C pipeline: overclocking compensates 10 % oversubscription,
    // the packer realises the density, and the TCO model prices it.
    const auto plan =
        core::planOversubscription(workload::app("SPECJBB"), 44, 40);
    ASSERT_TRUE(plan.feasible);

    cluster::BinPacker packer({40, 512.0}, 10, plan.oversubRatio);
    std::vector<vm::VmSpec> vms;
    for (int i = 0; i < 110; ++i) {
        vm::VmSpec spec;
        spec.vcores = 4;
        spec.memoryGb = 16.0;
        vms.push_back(spec);
    }
    EXPECT_EQ(packer.placeAll(vms), 110u);
    EXPECT_NEAR(packer.stats().density, 1.1, 1e-9);

    tco::TcoModel tco_model;
    const double rel = tco_model.costPerVcoreRelative(
        tco::Scenario::Overclockable2Pic, packer.stats().density - 1.0);
    EXPECT_NEAR(rel, 0.87, 0.02);
}

TEST(Integration, FullAutoScaleRunIsDeterministic)
{
    autoscale::ExperimentParams params;
    params.seed = 77;
    params.stepDuration = 120.0;
    const auto a =
        autoscale::runFullExperiment(autoscale::Policy::OcA, params);
    const auto b =
        autoscale::runFullExperiment(autoscale::Policy::OcA, params);
    EXPECT_DOUBLE_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.maxVms, b.maxVms);
    EXPECT_DOUBLE_EQ(a.vmHours, b.vmHours);
    EXPECT_EQ(a.requests, b.requests);
}

TEST(Integration, GreenBandConsistentWithTableV)
{
    // The controller's green band in HFE-7000 should allow the OC1
    // clock (the paper runs it for 6 months without lifetime alarm),
    // while plain air cooling should not.
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("B2"));
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog;
    power::RaplCapper budget(500.0);

    thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
    core::OverclockController immersed(cpu, hfe, tracker, watchdog, budget);
    EXPECT_GE(immersed.greenBandCeiling(), 4.0);

    thermal::AirCooling air;
    core::OverclockController aired(cpu, air, tracker, watchdog, budget);
    EXPECT_LT(aired.greenBandCeiling(), immersed.greenBandCeiling());
}

TEST(Integration, ServerPowerFeedsTankBudget)
{
    // 36 blades at full load fit the large tank's condenser; overclocked
    // (+100 W/socket) they exceed it, forcing the operator to shed load
    // (the power-management interplay of Sec. IV).
    auto tank = thermal::makeLargeTank();
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    const auto &cooling = tank.coolingSystem();

    const auto nominal = server.compute({2.6, 0.90, 1.0}, cooling);
    for (std::size_t i = 0; i < tank.slots(); ++i)
        tank.setHeatLoad(i, nominal.total);
    EXPECT_TRUE(tank.condenserKeepsUp());

    const auto oc = server.compute({2.6 * 1.23, 0.98, 1.0}, cooling);
    for (std::size_t i = 0; i < tank.slots(); ++i)
        tank.setHeatLoad(i, oc.total);
    EXPECT_FALSE(tank.condenserKeepsUp());
}

} // namespace
} // namespace imsim
