/**
 * @file
 * Unit tests for the control plane: bottleneck analysis, the overclock
 * controller's three risk gates (lifetime, stability, power), the green
 * band, and the use-case planners.
 */

#include <gtest/gtest.h>

#include "core/bottleneck.hh"
#include "core/controller.hh"
#include "core/usecases.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using core::BottleneckAnalyzer;
using core::OverclockController;

// --- Bottleneck analysis ---------------------------------------------------

TEST(Bottleneck, SignalsFromWorkVector)
{
    const auto signals = core::signalsFromWork({0.35, 0.15, 0.45, 0.05});
    EXPECT_NEAR(signals.coreScalable, 0.35 / 0.95, 1e-9);
    EXPECT_NEAR(signals.ioFraction, 0.05, 1e-12);
}

TEST(Bottleneck, BiGetsCoreOnlyOverclock)
{
    // Fig. 9's BI example: overclocking other components wastes power.
    const BottleneckAnalyzer analyzer;
    const auto &config = analyzer.configForApp(workload::app("BI"));
    EXPECT_EQ(config.name, "OC1");
}

TEST(Bottleneck, SqlGetsMemoryOverclock)
{
    const BottleneckAnalyzer analyzer;
    const auto &config = analyzer.configForApp(workload::app("SQL"));
    EXPECT_EQ(config.name, "OC3");
}

TEST(Bottleneck, PmbenchGetsCacheOverclock)
{
    const BottleneckAnalyzer analyzer;
    const auto &config = analyzer.configForApp(workload::app("Pmbench"));
    // Pmbench is cache-pressure dominated with some memory pressure.
    EXPECT_TRUE(config.name == "OC2" || config.name == "OC3");
}

TEST(Bottleneck, PureIoWorkloadGetsNoOverclock)
{
    const BottleneckAnalyzer analyzer;
    const auto rec =
        analyzer.recommend(core::signalsFromWork({0.05, 0.02, 0.03, 0.90}));
    EXPECT_FALSE(rec.any());
    EXPECT_EQ(analyzer.configFor(rec).name, "B2");
}

TEST(Bottleneck, ThresholdValidation)
{
    EXPECT_THROW(BottleneckAnalyzer(0.0), FatalError);
    EXPECT_THROW(BottleneckAnalyzer(1.0), FatalError);
}

// --- Overclock controller ---------------------------------------------------

struct ControllerRig
{
    hw::CpuModel cpu = hw::CpuModel::xeonW3175x();
    thermal::TwoPhaseImmersionCooling cooling{thermal::hfe7000()};
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker{lifetime, 5.0};
    reliability::ErrorRateWatchdog watchdog{3600.0, 10.0};
    power::RaplCapper budget{450.0};

    ControllerRig() { cpu.applyConfig(hw::cpuConfig("OC1")); }

    OverclockController
    controller(core::ControllerPolicy policy = {})
    {
        return OverclockController(cpu, cooling, tracker, watchdog, budget,
                                   policy);
    }
};

TEST(Controller, GrantsGreenBandRequest)
{
    ControllerRig rig;
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 24.0, 0.6, 0.0);
    EXPECT_TRUE(decision.approved) << decision.reason;
    EXPECT_DOUBLE_EQ(decision.grantedCore, 4.1);
    EXPECT_NEAR(decision.grantedRatio, 4.1 / 3.4, 1e-9);
}

TEST(Controller, DeniesBeyondBoundary)
{
    ControllerRig rig;
    auto controller = rig.controller();
    const auto decision = controller.request(5.5, 1.0, 0.5, 0.0);
    EXPECT_FALSE(decision.approved);
    EXPECT_DOUBLE_EQ(decision.grantedCore, 3.4);
}

TEST(Controller, DeniesWhenWatchdogTripped)
{
    ControllerRig rig;
    rig.watchdog.record(0.0, 0);
    rig.watchdog.record(1800.0, 500); // Error storm.
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 1.0, 0.5, 1800.0);
    EXPECT_FALSE(decision.approved);
    EXPECT_NE(decision.reason.find("watchdog"), std::string::npos);
}

TEST(Controller, DeniesWithoutVoltageMargin)
{
    ControllerRig rig;
    rig.cpu.setVoltageOffset(0.0); // Strip the +50 mV stability offset.
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 1.0, 0.5, 0.0);
    EXPECT_FALSE(decision.approved);
    EXPECT_NE(decision.reason.find("margin"), std::string::npos);
}

TEST(Controller, TrimsToThePowerBudget)
{
    ControllerRig rig;
    rig.budget.setPowerLimit(330.0); // Between B2 (~255 W) and OC1.
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 1.0, 1.0, 0.0);
    EXPECT_TRUE(decision.approved) << decision.reason;
    EXPECT_LT(decision.grantedCore, 4.1);
    EXPECT_GT(decision.grantedCore, 3.4);
}

TEST(Controller, DeniesWhenBudgetLeavesNoHeadroom)
{
    ControllerRig rig;
    rig.budget.setPowerLimit(200.0); // Below even B2's package power.
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 1.0, 1.0, 0.0);
    EXPECT_FALSE(decision.approved);
    EXPECT_NE(decision.reason.find("power"), std::string::npos);
}

TEST(Controller, LifetimeGateBlocksWornPart)
{
    ControllerRig rig;
    // Burn the whole wear budget young: 2 years of air-style overclock.
    reliability::StressCondition harsh{0.98, 101.0, 20.0, 1.23, 1.0};
    rig.tracker.accrue(harsh, 2.0);
    EXPECT_LT(rig.tracker.credit(), 0.0);
    auto controller = rig.controller();
    const auto decision = controller.request(4.1, 24.0 * 365.0, 1.0, 0.0);
    EXPECT_FALSE(decision.approved);
    EXPECT_NE(decision.reason.find("lifetime"), std::string::npos);
}

TEST(Controller, GreenBandCeilingNearPlus23Percent)
{
    // Fig. 5(b): in HFE-7000 the green band tops out around +23 %.
    ControllerRig rig;
    rig.cpu.applyConfig(hw::cpuConfig("B2"));
    auto controller = rig.controller();
    const GHz ceiling = controller.greenBandCeiling();
    EXPECT_NEAR(ceiling / 3.4, 1.23, 0.09);
}

TEST(Controller, GreenBandShrinksWithWorseCooling)
{
    ControllerRig rig;
    rig.cpu.applyConfig(hw::cpuConfig("B2"));
    auto hfe_controller = rig.controller();
    const GHz hfe_ceiling = hfe_controller.greenBandCeiling();

    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::CopperPlate});
    OverclockController fc_controller(rig.cpu, fc, rig.tracker,
                                      rig.watchdog, rig.budget);
    EXPECT_LE(fc_controller.greenBandCeiling(), hfe_ceiling);
}

TEST(Controller, PolicyValidation)
{
    ControllerRig rig;
    core::ControllerPolicy policy;
    policy.minMarginMv = -1.0;
    EXPECT_THROW(rig.controller(policy), FatalError);
}

// --- Use-case planners --------------------------------------------------------

TEST(UseCases, HighPerfVmPlanForBi)
{
    const auto plan = core::planHighPerfVm(workload::app("BI"));
    EXPECT_EQ(plan.config->name, "OC1");
    EXPECT_GT(plan.expectedSpeedup, 1.10);
    EXPECT_TRUE(plan.inGreenBand);
}

TEST(UseCases, HighPerfVmSpeedupMatchesMetricDirection)
{
    // Throughput apps report speedup > 1 too.
    const auto plan = core::planHighPerfVm(workload::app("SPECJBB"));
    EXPECT_GT(plan.expectedSpeedup, 1.0);
}

TEST(UseCases, OversubscriptionWithinCapacityNeedsNothing)
{
    const auto plan =
        core::planOversubscription(workload::app("SQL"), 16, 16);
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(plan.config->name, "B2");
}

TEST(UseCases, ModestOversubscriptionIsCompensated)
{
    // 10 % oversubscription on a core-scalable app: OC1 suffices.
    const auto plan =
        core::planOversubscription(workload::app("SPECJBB"), 22, 20);
    EXPECT_TRUE(plan.feasible);
    EXPECT_GE(plan.compensatedSpeedup, 1.10);
}

TEST(UseCases, ExtremeOversubscriptionIsInfeasible)
{
    // 50 % oversubscription exceeds any config's speedup (max ~25 %).
    const auto plan =
        core::planOversubscription(workload::app("SQL"), 24, 16);
    EXPECT_FALSE(plan.feasible);
}

TEST(UseCases, InvalidInputsAreFatal)
{
    EXPECT_THROW(core::planOversubscription(workload::app("SQL"), 0, 16),
                 FatalError);
    EXPECT_THROW(core::planHighPerfVm(workload::app("SQL"), 0.5),
                 FatalError);
}

} // namespace
} // namespace imsim
