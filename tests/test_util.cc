/**
 * @file
 * Unit tests for the util module: logging/error split, RNG determinism
 * and distribution moments, online statistics, percentile estimation,
 * sliding windows, histograms, and table formatting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/ring.hh"
#include "util/shard.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace imsim {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(util::fatal("bad config"), FatalError);
    EXPECT_THROW(util::fatal("bad config"), Error);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(util::panic("broken invariant"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenConditionHolds)
{
    EXPECT_NO_THROW(util::fatalIf(false, "fine"));
    EXPECT_THROW(util::fatalIf(true, "not fine"), FatalError);
}

TEST(Logging, ErrorMessageIsPreserved)
{
    try {
        util::fatal("the message");
        FAIL() << "expected throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("the message"),
                  std::string::npos);
    }
}

TEST(Rng, SameSeedSameStream)
{
    util::Rng a(7);
    util::Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge)
{
    util::Rng a(7);
    util::Rng b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected)
{
    util::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, ExponentialMeanConverges)
{
    util::Rng rng(2);
    util::OnlineStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.exponential(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCvMatchesParameters)
{
    util::Rng rng(3);
    util::OnlineStats stats;
    for (int i = 0; i < 300000; ++i)
        stats.add(rng.lognormalMeanCv(2.0, 1.5));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev() / stats.mean(), 1.5, 0.08);
}

TEST(Rng, ParetoRespectsMinimum)
{
    util::Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(1.5, 2.5), 1.5);
}

TEST(Rng, PoissonMeanConverges)
{
    util::Rng rng(5);
    util::OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(rng.poisson(4.2)));
    EXPECT_NEAR(stats.mean(), 4.2, 0.05);
}

TEST(Rng, DiscretePicksByWeight)
{
    util::Rng rng(6);
    std::vector<double> weights{1.0, 3.0};
    int second = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.discrete(weights) == 1)
            ++second;
    EXPECT_NEAR(second / 100000.0, 0.75, 0.01);
}

TEST(Rng, InvalidParametersAreFatal)
{
    util::Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), FatalError);
    EXPECT_THROW(rng.uniform(5.0, 2.0), FatalError);
    EXPECT_THROW(rng.bernoulli(1.5), FatalError);
    EXPECT_THROW(rng.discrete({}), FatalError);
    EXPECT_THROW(rng.lognormalMeanCv(-1.0, 1.0), FatalError);
}

TEST(Rng, ChildStreamsAreIndependent)
{
    util::Rng parent(9);
    util::Rng c1 = parent.child();
    util::Rng c2 = parent.child();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform() == c2.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(OnlineStats, MeanVarianceMinMax)
{
    util::OnlineStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream)
{
    util::Rng rng(11);
    util::OnlineStats all;
    util::OnlineStats a;
    util::OnlineStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(1.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
}

TEST(OnlineStats, EmptyIsSafe)
{
    util::OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(PercentileEstimator, ExactQuantiles)
{
    util::PercentileEstimator est;
    for (int i = 1; i <= 100; ++i)
        est.add(static_cast<double>(i));
    EXPECT_NEAR(est.p50(), 50.5, 0.01);
    EXPECT_NEAR(est.p95(), 95.05, 0.01);
    EXPECT_NEAR(est.p99(), 99.01, 0.01);
    EXPECT_DOUBLE_EQ(est.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(est.mean(), 50.5);
}

TEST(PercentileEstimator, SingleSampleAndEmpty)
{
    util::PercentileEstimator est;
    EXPECT_DOUBLE_EQ(est.p95(), 0.0);
    est.add(3.5);
    EXPECT_DOUBLE_EQ(est.p50(), 3.5);
    EXPECT_DOUBLE_EQ(est.p99(), 3.5);
}

TEST(PercentileEstimator, InterleavedAddAndQuery)
{
    util::PercentileEstimator est;
    est.add(1.0);
    est.add(2.0);
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 2.0);
    est.add(10.0); // Must re-sort after a post-query insertion.
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 10.0);
}

TEST(PercentileEstimator, OutOfRangeIsFatal)
{
    util::PercentileEstimator est;
    est.add(1.0);
    EXPECT_THROW(est.percentile(-1.0), FatalError);
    EXPECT_THROW(est.percentile(101.0), FatalError);
}

TEST(SlidingTimeWindow, TimeWeightedAverage)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 0.0);
    window.record(5.0, 1.0);
    // Over [0, 10]: half at 0, half at 1.
    EXPECT_NEAR(window.average(10.0), 0.5, 1e-9);
}

TEST(SlidingTimeWindow, OldSegmentsLeaveTheWindow)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 1.0);
    window.record(20.0, 0.0);
    // At t=35, the window [25, 35] only sees the 0 segment.
    EXPECT_NEAR(window.average(35.0), 0.0, 1e-9);
}

TEST(SlidingTimeWindow, StraddlingSegmentCountsPartially)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 2.0);
    window.record(12.0, 0.0);
    // Window [5, 15]: 7 s at 2.0, 3 s at 0.0.
    EXPECT_NEAR(window.average(15.0), 2.0 * 0.7, 1e-9);
}

TEST(SlidingTimeWindow, SubWindowAverage)
{
    util::SlidingTimeWindow window(180.0);
    window.record(0.0, 0.0);
    window.record(100.0, 1.0);
    // 30 s sub-window at t=120: 10 s at 0, 20 s at 1.
    EXPECT_NEAR(window.average(120.0, 30.0), 20.0 / 30.0, 1e-9);
    // Full window at t=120: 100 s at 0, 20 s at 1.
    EXPECT_NEAR(window.average(120.0), 20.0 / 120.0, 1e-9);
}

TEST(SlidingTimeWindow, ShortQueryDoesNotEvictLongHistory)
{
    util::SlidingTimeWindow window(180.0);
    window.record(0.0, 1.0);
    window.record(50.0, 0.0);
    // Query the short window first...
    EXPECT_NEAR(window.average(60.0, 5.0), 0.0, 1e-9);
    // ...the long window must still see the early segment.
    EXPECT_NEAR(window.average(60.0, 180.0), 50.0 / 60.0, 1e-9);
}

TEST(SlidingTimeWindow, BackwardsTimeIsFatal)
{
    util::SlidingTimeWindow window(10.0);
    window.record(5.0, 1.0);
    EXPECT_THROW(window.record(4.0, 1.0), FatalError);
}

TEST(SlidingTimeWindow, EmptyReturnsZero)
{
    util::SlidingTimeWindow window(10.0);
    EXPECT_DOUBLE_EQ(window.average(100.0), 0.0);
    EXPECT_DOUBLE_EQ(window.latest(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    util::Histogram hist(0.0, 10.0, 10);
    hist.add(0.5);
    hist.add(9.5);
    hist.add(-3.0);  // Clamps to first bin.
    hist.add(42.0);  // Clamps to last bin.
    EXPECT_EQ(hist.binCount(0), 2u);
    EXPECT_EQ(hist.binCount(9), 2u);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_DOUBLE_EQ(hist.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(hist.binCenter(9), 9.5);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(util::Histogram(0.0, 0.0, 10), FatalError);
    EXPECT_THROW(util::Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, NonFiniteSamplesAreDroppedNotBinned)
{
    // Regression: NaN used to fall through the bin-index arithmetic
    // (UB on the float->size_t cast) and +/-inf landed in the edge
    // bins, poisoning means. They now only bump dropped().
    util::Histogram hist(0.0, 10.0, 10);
    hist.add(5.0);
    hist.add(std::numeric_limits<double>::quiet_NaN());
    hist.add(std::numeric_limits<double>::infinity());
    hist.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(hist.total(), 1u);
    EXPECT_EQ(hist.dropped(), 3u);
    EXPECT_EQ(hist.binCount(0), 0u);
    EXPECT_EQ(hist.binCount(9), 0u);
    EXPECT_EQ(hist.binCount(5), 1u);
}

// --- Const-read thread safety (regression; run under `ctest -L tsan`) ----

TEST(PercentileEstimator, ConstPercentileMatchesAndDoesNotMutate)
{
    // Regression: percentile() const used to sort the mutable sample
    // store — a data race under concurrent const readers. The const
    // overload now copies; results must still match the mutating one.
    util::PercentileEstimator est;
    for (int i = 100; i >= 1; --i)
        est.add(static_cast<double>(i));

    const util::PercentileEstimator &view = est;
    const double const_p99 = view.p99();
    const double mut_p99 = est.p99();
    EXPECT_DOUBLE_EQ(const_p99, mut_p99);
    EXPECT_DOUBLE_EQ(view.p50(), est.p50());
}

TEST(PercentileEstimator, ConcurrentConstReadsAreRaceFree)
{
    util::PercentileEstimator est;
    for (int i = 0; i < 10000; ++i)
        est.add(static_cast<double>(i % 997));

    const util::PercentileEstimator &view = est;
    std::vector<std::thread> readers;
    std::vector<double> results(4, 0.0);
    for (std::size_t t = 0; t < results.size(); ++t) {
        readers.emplace_back([&view, &results, t] {
            double acc = 0.0;
            for (int i = 0; i < 50; ++i)
                acc += view.p99() + view.percentile(50.0);
            results[t] = acc;
        });
    }
    for (auto &reader : readers)
        reader.join();
    for (std::size_t t = 1; t < results.size(); ++t)
        EXPECT_DOUBLE_EQ(results[t], results[0]);
}

TEST(SlidingTimeWindow, ConcurrentConstAveragesAreRaceFree)
{
    // Regression: average() const used to evict expired segments from
    // the mutable deque; eviction now happens in record() only, so
    // concurrent const readers are safe.
    util::SlidingTimeWindow window(10.0);
    for (int i = 0; i < 200; ++i)
        window.record(static_cast<double>(i) * 0.1, i % 7 ? 1.0 : 0.0);

    std::vector<std::thread> readers;
    std::vector<double> results(4, 0.0);
    for (std::size_t t = 0; t < results.size(); ++t) {
        readers.emplace_back([&window, &results, t] {
            double acc = 0.0;
            for (int i = 0; i < 200; ++i)
                acc += window.average(20.0) + window.average(20.0, 5.0);
            results[t] = acc;
        });
    }
    for (auto &reader : readers)
        reader.join();
    for (std::size_t t = 1; t < results.size(); ++t)
        EXPECT_DOUBLE_EQ(results[t], results[0]);
}

TEST(TableWriter, AlignedOutputContainsCells)
{
    util::TableWriter table({"Config", "Value"});
    table.addRow({"B2", "1.00"});
    table.addRow({"OC3", "0.83"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Config"), std::string::npos);
    EXPECT_NE(text.find("OC3"), std::string::npos);
    EXPECT_NE(text.find("0.83"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TableWriter, CsvOutput)
{
    util::TableWriter table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriter, ColumnMismatchIsFatal)
{
    util::TableWriter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
}

TEST(TableFormat, FmtAndPercent)
{
    EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(util::fmt(2.0, 0), "2");
    EXPECT_EQ(util::fmtPercent(0.17, 1), "+17.0%");
    EXPECT_EQ(util::fmtPercent(-0.07, 0), "-7%");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toKelvin(0.0), 273.15);
    EXPECT_DOUBLE_EQ(units::toCelsius(373.15), 100.0);
    EXPECT_DOUBLE_EQ(units::secondsToHours(7200.0), 2.0);
    EXPECT_DOUBLE_EQ(units::yearsToHours(1.0), 8766.0);
}

TEST(Json, ParsesNestedDocument)
{
    const util::Json doc = util::Json::parse(
        "{\"name\": \"run\", \"n\": 3, \"neg\": -2.5e1, "
        "\"ok\": true, \"off\": false, \"none\": null, "
        "\"list\": [1, \"two\", {\"k\": 3}], "
        "\"obj\": {\"a\": 1, \"b\": 2}}");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("name").str(), "run");
    EXPECT_DOUBLE_EQ(doc.at("n").number(), 3.0);
    EXPECT_DOUBLE_EQ(doc.at("neg").number(), -25.0);
    EXPECT_TRUE(doc.at("ok").boolean());
    EXPECT_FALSE(doc.at("off").boolean());
    EXPECT_TRUE(doc.at("none").isNull());
    EXPECT_TRUE(std::isnan(doc.at("none").number()));
    ASSERT_EQ(doc.at("list").size(), 3u);
    EXPECT_EQ(doc.at("list").at(1).str(), "two");
    EXPECT_DOUBLE_EQ(doc.at("list").at(2).at("k").number(), 3.0);
    EXPECT_TRUE(doc.has("obj"));
    EXPECT_FALSE(doc.has("missing"));
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.at("missing"), FatalError);
}

TEST(Json, StringEscapesRoundTrip)
{
    const util::Json doc = util::Json::parse(
        "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
    EXPECT_EQ(doc.at("s").str(), "a\"b\\c\n\tA");

    // appendEscaped emits a complete quoted JSON string literal.
    std::string out;
    util::Json::appendEscaped(out, "x\"y\\z\n");
    EXPECT_EQ(out, "\"x\\\"y\\\\z\\n\"");
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_THROW(util::Json::parse("not json"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": }"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(util::Json::parse("[1, 2"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": 1} trailing"), FatalError);
    EXPECT_THROW(util::Json::parse(""), FatalError);
}

TEST(Json, TypePredicatesAndMismatchesAreFatal)
{
    const util::Json doc = util::Json::parse("{\"n\": 1, \"s\": \"x\"}");
    EXPECT_TRUE(doc.at("n").isNumber());
    EXPECT_TRUE(doc.at("s").isString());
    EXPECT_THROW(doc.at("n").str(), FatalError);
    EXPECT_THROW(doc.at("s").number(), FatalError);
    EXPECT_THROW(doc.at("s").array(), FatalError);
    EXPECT_THROW(doc.at(0), FatalError); // Object, not array.
}

// ---------------------------------------------------------------------
// ThreadPool::parallelFor — the allocation-free fork-join under the
// intra-run fleet sharding.
// ---------------------------------------------------------------------

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    util::ThreadPool pool(3);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.forEachIndex(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForIsReusableAndHandlesEmptyRanges)
{
    util::ThreadPool pool(2);
    std::atomic<std::size_t> total{0};
    pool.forEachIndex(0, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 0u);
    for (int round = 0; round < 50; ++round)
        pool.forEachIndex(7, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50u * 7u);
}

TEST(ThreadPool, ParallelForRethrowsTheShardExceptionOnTheCaller)
{
    util::ThreadPool pool(3);
    constexpr std::size_t kCount = 64;
    // Repeat so the throw lands on workers as well as the caller.
    for (int round = 0; round < 20; ++round) {
        try {
            pool.forEachIndex(kCount, [&](std::size_t i) {
                if (i == 13)
                    util::fatal("shard body failed");
            });
            FAIL() << "expected FatalError";
        } catch (const FatalError &err) {
            EXPECT_STREQ(err.what(), "fatal: shard body failed");
        }
        // The pool must stay fully usable after a failed job.
        std::atomic<std::size_t> ran{0};
        pool.forEachIndex(kCount, [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), kCount);
    }
}

TEST(ThreadPool, ParallelForStopsClaimingIndicesAfterAThrow)
{
    util::ThreadPool pool(1);
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(pool.forEachIndex(1000,
                                   [&](std::size_t i) {
                                       ran.fetch_add(1);
                                       if (i == 0)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // Indices already claimed may finish, but the cursor is dragged to
    // the end on the first throw: nowhere near all 1000 run.
    EXPECT_LT(ran.load(), 1000u);
}

// ---------------------------------------------------------------------
// ShardPlan — deterministic shard geometry for the fleet minute loop.
// ---------------------------------------------------------------------

TEST(ShardPlan, EvenSplitCoversTheRangeContiguously)
{
    const util::ShardPlan plan = util::ShardPlan::even(103, 4);
    ASSERT_EQ(plan.shards(), 4u);
    EXPECT_EQ(plan.begin(0), 0u);
    EXPECT_EQ(plan.end(plan.shards() - 1), 103u);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < plan.shards(); ++s) {
        EXPECT_LE(plan.begin(s), plan.end(s));
        if (s > 0) {
            EXPECT_EQ(plan.begin(s), plan.end(s - 1));
        }
        covered += plan.end(s) - plan.begin(s);
    }
    EXPECT_EQ(covered, 103u);
}

TEST(ShardPlan, AlignedSplitOnlyCutsOnGroupBoundaries)
{
    const std::vector<std::size_t> group_begin{0, 10, 20, 35, 50, 90};
    const util::ShardPlan plan = util::ShardPlan::alignedTo(group_begin, 3);
    EXPECT_EQ(plan.begin(0), 0u);
    EXPECT_EQ(plan.end(plan.shards() - 1), 90u);
    for (std::size_t s = 0; s + 1 < plan.shards(); ++s) {
        const std::size_t cut = plan.end(s);
        bool on_boundary = false;
        for (const std::size_t b : group_begin)
            on_boundary = on_boundary || cut == b;
        EXPECT_TRUE(on_boundary) << "cut at " << cut;
    }
}

// ---------------------------------------------------------------------
// RingDeque — the allocation-free FIFO under the queueing hot path.
// ---------------------------------------------------------------------

TEST(RingDeque, FifoOrderSurvivesWrapAround)
{
    util::RingDeque<int> ring;
    int next_push = 0;
    int next_pop = 0;
    // Cycle far past the initial capacity so head/tail wrap many times.
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 5; ++i)
            ring.push_back(next_push++);
        for (int i = 0; i < 5; ++i) {
            ASSERT_EQ(ring.front(), next_pop);
            ring.pop_front();
            ++next_pop;
        }
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingDeque, GrowthPreservesOrderAndIndexing)
{
    util::RingDeque<int> ring;
    // Offset the head so the grow path has to unwrap a split ring.
    for (int i = 0; i < 6; ++i)
        ring.push_back(-1);
    for (int i = 0; i < 6; ++i)
        ring.pop_front();
    for (int i = 0; i < 100; ++i)
        ring.push_back(i);
    ASSERT_EQ(ring.size(), 100u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], static_cast<int>(i));
    EXPECT_EQ(ring.front(), 0);
    EXPECT_EQ(ring.back(), 99);
}

TEST(RingDeque, PushFrontRequeuesAheadOfTheBacklog)
{
    util::RingDeque<int> ring;
    ring.push_back(2);
    ring.push_back(3);
    ring.push_front(1); // The requeue-ahead-of-backlog path.
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 1);
    EXPECT_EQ(ring[1], 2);
    EXPECT_EQ(ring[2], 3);
    EXPECT_EQ(ring.front(), 1);
}

TEST(RingDeque, MoveOnlyPayloadsRelocateOnGrowth)
{
    util::RingDeque<std::unique_ptr<int>> ring;
    for (int i = 0; i < 40; ++i)
        ring.emplace_back(new int(i));
    for (int i = 0; i < 40; ++i) {
        ASSERT_NE(ring.front(), nullptr);
        EXPECT_EQ(*ring.front(), i);
        ring.pop_front();
    }
}

TEST(RingDeque, EmptyAccessAndOutOfRangeAreFatal)
{
    util::RingDeque<int> ring;
    EXPECT_THROW(ring.front(), FatalError);
    EXPECT_THROW(ring.back(), FatalError);
    EXPECT_THROW(ring.pop_front(), FatalError);
    ring.push_back(1);
    EXPECT_THROW(ring[1], FatalError);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.reserve(100); // Capacity-only; still empty.
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring[0], FatalError);
}

} // namespace
} // namespace imsim
