/**
 * @file
 * Unit tests for the util module: logging/error split, RNG determinism
 * and distribution moments, online statistics, percentile estimation,
 * sliding windows, histograms, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace imsim {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(util::fatal("bad config"), FatalError);
    EXPECT_THROW(util::fatal("bad config"), Error);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(util::panic("broken invariant"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenConditionHolds)
{
    EXPECT_NO_THROW(util::fatalIf(false, "fine"));
    EXPECT_THROW(util::fatalIf(true, "not fine"), FatalError);
}

TEST(Logging, ErrorMessageIsPreserved)
{
    try {
        util::fatal("the message");
        FAIL() << "expected throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("the message"),
                  std::string::npos);
    }
}

TEST(Rng, SameSeedSameStream)
{
    util::Rng a(7);
    util::Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge)
{
    util::Rng a(7);
    util::Rng b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected)
{
    util::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, ExponentialMeanConverges)
{
    util::Rng rng(2);
    util::OnlineStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.exponential(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCvMatchesParameters)
{
    util::Rng rng(3);
    util::OnlineStats stats;
    for (int i = 0; i < 300000; ++i)
        stats.add(rng.lognormalMeanCv(2.0, 1.5));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev() / stats.mean(), 1.5, 0.08);
}

TEST(Rng, ParetoRespectsMinimum)
{
    util::Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(1.5, 2.5), 1.5);
}

TEST(Rng, PoissonMeanConverges)
{
    util::Rng rng(5);
    util::OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(rng.poisson(4.2)));
    EXPECT_NEAR(stats.mean(), 4.2, 0.05);
}

TEST(Rng, DiscretePicksByWeight)
{
    util::Rng rng(6);
    std::vector<double> weights{1.0, 3.0};
    int second = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.discrete(weights) == 1)
            ++second;
    EXPECT_NEAR(second / 100000.0, 0.75, 0.01);
}

TEST(Rng, InvalidParametersAreFatal)
{
    util::Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), FatalError);
    EXPECT_THROW(rng.uniform(5.0, 2.0), FatalError);
    EXPECT_THROW(rng.bernoulli(1.5), FatalError);
    EXPECT_THROW(rng.discrete({}), FatalError);
    EXPECT_THROW(rng.lognormalMeanCv(-1.0, 1.0), FatalError);
}

TEST(Rng, ChildStreamsAreIndependent)
{
    util::Rng parent(9);
    util::Rng c1 = parent.child();
    util::Rng c2 = parent.child();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform() == c2.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(OnlineStats, MeanVarianceMinMax)
{
    util::OnlineStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream)
{
    util::Rng rng(11);
    util::OnlineStats all;
    util::OnlineStats a;
    util::OnlineStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(1.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
}

TEST(OnlineStats, EmptyIsSafe)
{
    util::OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(PercentileEstimator, ExactQuantiles)
{
    util::PercentileEstimator est;
    for (int i = 1; i <= 100; ++i)
        est.add(static_cast<double>(i));
    EXPECT_NEAR(est.p50(), 50.5, 0.01);
    EXPECT_NEAR(est.p95(), 95.05, 0.01);
    EXPECT_NEAR(est.p99(), 99.01, 0.01);
    EXPECT_DOUBLE_EQ(est.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(est.mean(), 50.5);
}

TEST(PercentileEstimator, SingleSampleAndEmpty)
{
    util::PercentileEstimator est;
    EXPECT_DOUBLE_EQ(est.p95(), 0.0);
    est.add(3.5);
    EXPECT_DOUBLE_EQ(est.p50(), 3.5);
    EXPECT_DOUBLE_EQ(est.p99(), 3.5);
}

TEST(PercentileEstimator, InterleavedAddAndQuery)
{
    util::PercentileEstimator est;
    est.add(1.0);
    est.add(2.0);
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 2.0);
    est.add(10.0); // Must re-sort after a post-query insertion.
    EXPECT_DOUBLE_EQ(est.percentile(100.0), 10.0);
}

TEST(PercentileEstimator, OutOfRangeIsFatal)
{
    util::PercentileEstimator est;
    est.add(1.0);
    EXPECT_THROW(est.percentile(-1.0), FatalError);
    EXPECT_THROW(est.percentile(101.0), FatalError);
}

TEST(SlidingTimeWindow, TimeWeightedAverage)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 0.0);
    window.record(5.0, 1.0);
    // Over [0, 10]: half at 0, half at 1.
    EXPECT_NEAR(window.average(10.0), 0.5, 1e-9);
}

TEST(SlidingTimeWindow, OldSegmentsLeaveTheWindow)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 1.0);
    window.record(20.0, 0.0);
    // At t=35, the window [25, 35] only sees the 0 segment.
    EXPECT_NEAR(window.average(35.0), 0.0, 1e-9);
}

TEST(SlidingTimeWindow, StraddlingSegmentCountsPartially)
{
    util::SlidingTimeWindow window(10.0);
    window.record(0.0, 2.0);
    window.record(12.0, 0.0);
    // Window [5, 15]: 7 s at 2.0, 3 s at 0.0.
    EXPECT_NEAR(window.average(15.0), 2.0 * 0.7, 1e-9);
}

TEST(SlidingTimeWindow, SubWindowAverage)
{
    util::SlidingTimeWindow window(180.0);
    window.record(0.0, 0.0);
    window.record(100.0, 1.0);
    // 30 s sub-window at t=120: 10 s at 0, 20 s at 1.
    EXPECT_NEAR(window.average(120.0, 30.0), 20.0 / 30.0, 1e-9);
    // Full window at t=120: 100 s at 0, 20 s at 1.
    EXPECT_NEAR(window.average(120.0), 20.0 / 120.0, 1e-9);
}

TEST(SlidingTimeWindow, ShortQueryDoesNotEvictLongHistory)
{
    util::SlidingTimeWindow window(180.0);
    window.record(0.0, 1.0);
    window.record(50.0, 0.0);
    // Query the short window first...
    EXPECT_NEAR(window.average(60.0, 5.0), 0.0, 1e-9);
    // ...the long window must still see the early segment.
    EXPECT_NEAR(window.average(60.0, 180.0), 50.0 / 60.0, 1e-9);
}

TEST(SlidingTimeWindow, BackwardsTimeIsFatal)
{
    util::SlidingTimeWindow window(10.0);
    window.record(5.0, 1.0);
    EXPECT_THROW(window.record(4.0, 1.0), FatalError);
}

TEST(SlidingTimeWindow, EmptyReturnsZero)
{
    util::SlidingTimeWindow window(10.0);
    EXPECT_DOUBLE_EQ(window.average(100.0), 0.0);
    EXPECT_DOUBLE_EQ(window.latest(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    util::Histogram hist(0.0, 10.0, 10);
    hist.add(0.5);
    hist.add(9.5);
    hist.add(-3.0);  // Clamps to first bin.
    hist.add(42.0);  // Clamps to last bin.
    EXPECT_EQ(hist.binCount(0), 2u);
    EXPECT_EQ(hist.binCount(9), 2u);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_DOUBLE_EQ(hist.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(hist.binCenter(9), 9.5);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(util::Histogram(0.0, 0.0, 10), FatalError);
    EXPECT_THROW(util::Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, NonFiniteSamplesAreDroppedNotBinned)
{
    // Regression: NaN used to fall through the bin-index arithmetic
    // (UB on the float->size_t cast) and +/-inf landed in the edge
    // bins, poisoning means. They now only bump dropped().
    util::Histogram hist(0.0, 10.0, 10);
    hist.add(5.0);
    hist.add(std::numeric_limits<double>::quiet_NaN());
    hist.add(std::numeric_limits<double>::infinity());
    hist.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(hist.total(), 1u);
    EXPECT_EQ(hist.dropped(), 3u);
    EXPECT_EQ(hist.binCount(0), 0u);
    EXPECT_EQ(hist.binCount(9), 0u);
    EXPECT_EQ(hist.binCount(5), 1u);
}

// --- Const-read thread safety (regression; run under `ctest -L tsan`) ----

TEST(PercentileEstimator, ConstPercentileMatchesAndDoesNotMutate)
{
    // Regression: percentile() const used to sort the mutable sample
    // store — a data race under concurrent const readers. The const
    // overload now copies; results must still match the mutating one.
    util::PercentileEstimator est;
    for (int i = 100; i >= 1; --i)
        est.add(static_cast<double>(i));

    const util::PercentileEstimator &view = est;
    const double const_p99 = view.p99();
    const double mut_p99 = est.p99();
    EXPECT_DOUBLE_EQ(const_p99, mut_p99);
    EXPECT_DOUBLE_EQ(view.p50(), est.p50());
}

TEST(PercentileEstimator, ConcurrentConstReadsAreRaceFree)
{
    util::PercentileEstimator est;
    for (int i = 0; i < 10000; ++i)
        est.add(static_cast<double>(i % 997));

    const util::PercentileEstimator &view = est;
    std::vector<std::thread> readers;
    std::vector<double> results(4, 0.0);
    for (std::size_t t = 0; t < results.size(); ++t) {
        readers.emplace_back([&view, &results, t] {
            double acc = 0.0;
            for (int i = 0; i < 50; ++i)
                acc += view.p99() + view.percentile(50.0);
            results[t] = acc;
        });
    }
    for (auto &reader : readers)
        reader.join();
    for (std::size_t t = 1; t < results.size(); ++t)
        EXPECT_DOUBLE_EQ(results[t], results[0]);
}

TEST(SlidingTimeWindow, ConcurrentConstAveragesAreRaceFree)
{
    // Regression: average() const used to evict expired segments from
    // the mutable deque; eviction now happens in record() only, so
    // concurrent const readers are safe.
    util::SlidingTimeWindow window(10.0);
    for (int i = 0; i < 200; ++i)
        window.record(static_cast<double>(i) * 0.1, i % 7 ? 1.0 : 0.0);

    std::vector<std::thread> readers;
    std::vector<double> results(4, 0.0);
    for (std::size_t t = 0; t < results.size(); ++t) {
        readers.emplace_back([&window, &results, t] {
            double acc = 0.0;
            for (int i = 0; i < 200; ++i)
                acc += window.average(20.0) + window.average(20.0, 5.0);
            results[t] = acc;
        });
    }
    for (auto &reader : readers)
        reader.join();
    for (std::size_t t = 1; t < results.size(); ++t)
        EXPECT_DOUBLE_EQ(results[t], results[0]);
}

TEST(TableWriter, AlignedOutputContainsCells)
{
    util::TableWriter table({"Config", "Value"});
    table.addRow({"B2", "1.00"});
    table.addRow({"OC3", "0.83"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Config"), std::string::npos);
    EXPECT_NE(text.find("OC3"), std::string::npos);
    EXPECT_NE(text.find("0.83"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TableWriter, CsvOutput)
{
    util::TableWriter table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriter, ColumnMismatchIsFatal)
{
    util::TableWriter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
}

TEST(TableFormat, FmtAndPercent)
{
    EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(util::fmt(2.0, 0), "2");
    EXPECT_EQ(util::fmtPercent(0.17, 1), "+17.0%");
    EXPECT_EQ(util::fmtPercent(-0.07, 0), "-7%");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toKelvin(0.0), 273.15);
    EXPECT_DOUBLE_EQ(units::toCelsius(373.15), 100.0);
    EXPECT_DOUBLE_EQ(units::secondsToHours(7200.0), 2.0);
    EXPECT_DOUBLE_EQ(units::yearsToHours(1.0), 8766.0);
}

TEST(Json, ParsesNestedDocument)
{
    const util::Json doc = util::Json::parse(
        "{\"name\": \"run\", \"n\": 3, \"neg\": -2.5e1, "
        "\"ok\": true, \"off\": false, \"none\": null, "
        "\"list\": [1, \"two\", {\"k\": 3}], "
        "\"obj\": {\"a\": 1, \"b\": 2}}");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("name").str(), "run");
    EXPECT_DOUBLE_EQ(doc.at("n").number(), 3.0);
    EXPECT_DOUBLE_EQ(doc.at("neg").number(), -25.0);
    EXPECT_TRUE(doc.at("ok").boolean());
    EXPECT_FALSE(doc.at("off").boolean());
    EXPECT_TRUE(doc.at("none").isNull());
    EXPECT_TRUE(std::isnan(doc.at("none").number()));
    ASSERT_EQ(doc.at("list").size(), 3u);
    EXPECT_EQ(doc.at("list").at(1).str(), "two");
    EXPECT_DOUBLE_EQ(doc.at("list").at(2).at("k").number(), 3.0);
    EXPECT_TRUE(doc.has("obj"));
    EXPECT_FALSE(doc.has("missing"));
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.at("missing"), FatalError);
}

TEST(Json, StringEscapesRoundTrip)
{
    const util::Json doc = util::Json::parse(
        "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
    EXPECT_EQ(doc.at("s").str(), "a\"b\\c\n\tA");

    // appendEscaped emits a complete quoted JSON string literal.
    std::string out;
    util::Json::appendEscaped(out, "x\"y\\z\n");
    EXPECT_EQ(out, "\"x\\\"y\\\\z\\n\"");
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_THROW(util::Json::parse("not json"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": }"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(util::Json::parse("[1, 2"), FatalError);
    EXPECT_THROW(util::Json::parse("{\"a\": 1} trailing"), FatalError);
    EXPECT_THROW(util::Json::parse(""), FatalError);
}

TEST(Json, TypePredicatesAndMismatchesAreFatal)
{
    const util::Json doc = util::Json::parse("{\"n\": 1, \"s\": \"x\"}");
    EXPECT_TRUE(doc.at("n").isNumber());
    EXPECT_TRUE(doc.at("s").isString());
    EXPECT_THROW(doc.at("n").str(), FatalError);
    EXPECT_THROW(doc.at("s").number(), FatalError);
    EXPECT_THROW(doc.at("s").array(), FatalError);
    EXPECT_THROW(doc.at(0), FatalError); // Object, not array.
}

} // namespace
} // namespace imsim
