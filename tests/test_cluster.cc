/**
 * @file
 * Unit tests for the cluster substrate: multi-dimensional packing with
 * oversubscription, failover-buffer strategies (Fig. 6), and the
 * capacity-crisis planner (Fig. 7).
 */

#include <gtest/gtest.h>

#include "cluster/buffers.hh"
#include "cluster/capacity.hh"
#include "cluster/packing.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace imsim {
namespace {

vm::VmSpec
makeVm(int vcores, double memory_gb)
{
    vm::VmSpec spec;
    spec.vcores = vcores;
    spec.memoryGb = memory_gb;
    return spec;
}

// --- Packing -----------------------------------------------------------------

TEST(Packing, PlacesWithinCapacity)
{
    cluster::BinPacker packer({40, 512.0}, 2);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(packer.place(makeVm(4, 16.0)).has_value());
    const auto stats = packer.stats();
    EXPECT_EQ(stats.hostsUsed, 1u);
    EXPECT_EQ(stats.vcoresPlaced, 40);
    EXPECT_DOUBLE_EQ(stats.density, 1.0);
}

TEST(Packing, RespectsCoreLimitWithoutOversubscription)
{
    cluster::BinPacker packer({40, 512.0}, 1);
    for (int i = 0; i < 10; ++i)
        packer.place(makeVm(4, 16.0));
    EXPECT_FALSE(packer.place(makeVm(4, 16.0)).has_value());
    EXPECT_EQ(packer.stats().failed, 1u);
}

TEST(Packing, OversubscriptionRaisesDensity)
{
    // Sec. VI-C: 10-20 % CPU oversubscription packs proportionally more
    // VMs on the same hardware.
    cluster::BinPacker packer({40, 512.0}, 1, 1.2);
    int placed = 0;
    while (packer.place(makeVm(4, 16.0)))
        ++placed;
    EXPECT_EQ(placed, 12); // 48 vcores on 40 pcores.
    EXPECT_NEAR(packer.stats().density, 1.2, 1e-9);
}

TEST(Packing, MemoryDimensionBinds)
{
    cluster::BinPacker packer({40, 64.0}, 1, 2.0);
    int placed = 0;
    while (packer.place(makeVm(2, 16.0)))
        ++placed;
    EXPECT_EQ(placed, 4); // Memory runs out before (oversubscribed) cores.
}

TEST(Packing, BestFitPrefersFullerHosts)
{
    cluster::BinPacker packer({8, 512.0}, 3);
    packer.place(makeVm(6, 16.0)); // Host 0: 6/8.
    packer.place(makeVm(2, 16.0)); // Should top up host 0, not open one.
    EXPECT_EQ(packer.stats().hostsUsed, 1u);
}

TEST(Packing, PlaceAllSortsLargestFirst)
{
    cluster::BinPacker packer({8, 512.0}, 2);
    std::vector<vm::VmSpec> vms{makeVm(2, 8.0), makeVm(6, 8.0),
                                makeVm(4, 8.0), makeVm(4, 8.0)};
    EXPECT_EQ(packer.placeAll(vms), 4u);
    // 6+2 on one host, 4+4 on the other: first-fit-increasing would fail.
    EXPECT_EQ(packer.stats().hostsUsed, 2u);
}

TEST(Packing, EvictHostReturnsVms)
{
    cluster::BinPacker packer({40, 512.0}, 1);
    const auto host = packer.place(makeVm(4, 16.0));
    ASSERT_TRUE(host.has_value());
    const auto evicted = packer.evictHost(*host);
    EXPECT_EQ(evicted.size(), 1u);
    EXPECT_EQ(packer.hosts()[*host].vcoresUsed, 0);
    EXPECT_EQ(packer.stats().hostsUsed, 0u);
}

TEST(Packing, InvalidConfigurationIsFatal)
{
    EXPECT_THROW(cluster::BinPacker({40, 512.0}, 0), FatalError);
    EXPECT_THROW(cluster::BinPacker({40, 512.0}, 1, 0.5), FatalError);
    cluster::BinPacker packer({40, 512.0}, 1);
    EXPECT_THROW(packer.place(makeVm(0, 16.0)), FatalError);
    EXPECT_THROW(packer.evictHost(5), FatalError);
}

// --- Failover buffers (Fig. 6) --------------------------------------------------

TEST(Buffers, VirtualBufferSellsWholeFleet)
{
    cluster::BufferSimulator sim(100, 10, 0.1);
    util::Rng rng(1);
    const auto stat = sim.simulate(cluster::BufferStrategy::Static, rng,
                                   24.0 * 30, 0.5, 24.0);
    const auto virt = sim.simulate(cluster::BufferStrategy::Virtual, rng,
                                   24.0 * 30, 0.5, 24.0);
    EXPECT_EQ(stat.sellableServers, 90u);
    EXPECT_EQ(virt.sellableServers, 100u);
    // Fig. 6's point: the virtual buffer hosts ~11 % more VMs.
    EXPECT_GT(virt.vmsHosted, stat.vmsHosted);
    EXPECT_NEAR(static_cast<double>(virt.vmsHosted) / stat.vmsHosted,
                100.0 / 90.0, 1e-9);
}

TEST(Buffers, BothStrategiesAbsorbTypicalFailures)
{
    cluster::BufferSimulator sim(200, 10, 0.1);
    util::Rng rng(2);
    const auto stat = sim.simulate(cluster::BufferStrategy::Static, rng,
                                   24.0 * 365, 0.5, 24.0);
    const auto virt = sim.simulate(cluster::BufferStrategy::Virtual, rng,
                                   24.0 * 365, 0.5, 24.0);
    EXPECT_GT(stat.failures, 20u);
    EXPECT_EQ(stat.recovered, stat.failures);
    EXPECT_EQ(virt.recovered, virt.failures);
}

TEST(Buffers, VirtualBufferSpendsOverclockHours)
{
    cluster::BufferSimulator sim(100, 10, 0.1);
    util::Rng rng(3);
    const auto stat = sim.simulate(cluster::BufferStrategy::Static, rng,
                                   24.0 * 365, 1.0, 48.0);
    const auto virt = sim.simulate(cluster::BufferStrategy::Virtual, rng,
                                   24.0 * 365, 1.0, 48.0);
    EXPECT_DOUBLE_EQ(stat.overclockHours, 0.0);
    EXPECT_GT(virt.overclockHours, 0.0);
}

TEST(Buffers, InvalidParametersAreFatal)
{
    EXPECT_THROW(cluster::BufferSimulator(0, 10, 0.1), FatalError);
    EXPECT_THROW(cluster::BufferSimulator(10, 10, 0.0), FatalError);
    EXPECT_THROW(cluster::BufferSimulator(10, 10, 1.0), FatalError);
    cluster::BufferSimulator sim(10, 10, 0.1);
    util::Rng rng(4);
    EXPECT_THROW(
        sim.simulate(cluster::BufferStrategy::Static, rng, -1.0),
        FatalError);
}

// --- Capacity crisis (Fig. 7) ----------------------------------------------------

TEST(Capacity, OverclockingBridgesTheGap)
{
    std::vector<double> demand;
    std::vector<double> supply;
    cluster::CapacityPlanner::makeCrisisScenario(
        24, 1000.0, 0.03, 200.0, 4, 6, demand, supply);
    cluster::CapacityPlanner planner(0.2);
    const auto points = planner.evaluate(demand, supply);
    const auto summary = planner.summarise(points);
    EXPECT_GT(summary.peakGapVms, 0.0);
    EXPECT_LT(summary.deniedVmPeriodsOverclock,
              summary.deniedVmPeriodsNominal);
    EXPECT_GT(summary.overclockedPeriods, 0.0);
}

TEST(Capacity, NoHeadroomMeansNoImprovement)
{
    std::vector<double> demand{100.0, 120.0};
    std::vector<double> supply{100.0, 100.0};
    cluster::CapacityPlanner planner(0.0);
    const auto points = planner.evaluate(demand, supply);
    EXPECT_DOUBLE_EQ(points[1].deniedNominal, points[1].deniedOverclock);
}

TEST(Capacity, ServedNeverExceedsDemand)
{
    std::vector<double> demand{50.0, 60.0, 70.0};
    std::vector<double> supply{100.0, 100.0, 100.0};
    cluster::CapacityPlanner planner(0.2);
    const auto points = planner.evaluate(demand, supply);
    for (const auto &point : points) {
        EXPECT_DOUBLE_EQ(point.servedNominal, point.demandVms);
        EXPECT_DOUBLE_EQ(point.servedOverclock, point.demandVms);
        EXPECT_DOUBLE_EQ(point.deniedOverclock, 0.0);
    }
}

TEST(Capacity, MismatchedSeriesIsFatal)
{
    cluster::CapacityPlanner planner(0.2);
    std::vector<double> demand{1.0, 2.0};
    std::vector<double> supply{1.0};
    EXPECT_THROW(planner.evaluate(demand, supply), FatalError);
}

} // namespace
} // namespace imsim
