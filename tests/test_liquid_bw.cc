/**
 * @file
 * Unit tests for the cold-plate / 1PIC cooling systems and the
 * hypervisor's shared memory-bandwidth contention channel.
 */

#include <gtest/gtest.h>

#include "thermal/liquid_loops.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "vm/hypervisor.hh"
#include "workload/app.hh"

namespace imsim {
namespace {

// --- Cold plates -----------------------------------------------------------

TEST(ColdPlate, JunctionBetweenAirAnd2Pic)
{
    // Table I's ordering: cold plates cool better than air but not as
    // well as 2PIC with BEC.
    thermal::ColdPlateCooling plate;
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling two_phase(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    const Watts p = 204.0;
    EXPECT_LT(plate.junctionTemperature(p), air.junctionTemperature(p));
    // A cold 30 C water loop can even undercut FC-3284's 50 C boiling
    // point; the loop supply temperature is the dominant knob.
    EXPECT_LT(plate.junctionTemperature(p),
              two_phase.junctionTemperature(p));
    thermal::ColdPlateCooling warm_loop(45.0);
    EXPECT_GT(warm_loop.junctionTemperature(p),
              plate.junctionTemperature(p));
}

TEST(ColdPlate, CaloricRiseGrowsWithPower)
{
    thermal::ColdPlateCooling plate;
    EXPECT_GT(plate.referenceTemperature(300.0),
              plate.referenceTemperature(100.0));
    EXPECT_DOUBLE_EQ(plate.referenceTemperature(0.0), 30.0);
}

TEST(ColdPlate, SupportsHighTdp)
{
    // Table I: 2 kW per server.
    thermal::ColdPlateCooling plate;
    EXPECT_TRUE(plate.supports(2000.0));
    EXPECT_FALSE(plate.supports(2100.0));
    EXPECT_EQ(plate.tech(), thermal::CoolingTech::CpuColdPlate);
}

// --- 1PIC ---------------------------------------------------------------------

TEST(SinglePhase, BulkTemperatureTracksTankLoad)
{
    thermal::SinglePhaseImmersionCooling one_phase(35.0, 0.14, 10000.0,
                                                   2.0);
    const Celsius light = one_phase.bulkTemperature();
    one_phase.setTankLoad(20000.0);
    EXPECT_GT(one_phase.bulkTemperature(), light);
}

TEST(SinglePhase, LoadDependentUnlike2Pic)
{
    // 2PIC's reference is pinned by boiling; 1PIC's rises with load —
    // the qualitative difference Sec. II describes.
    thermal::SinglePhaseImmersionCooling one_phase;
    thermal::TwoPhaseImmersionCooling two_phase(thermal::fc3284());
    const Celsius ref_2p_low = two_phase.referenceTemperature(100.0);
    const Celsius ref_2p_high = two_phase.referenceTemperature(400.0);
    EXPECT_DOUBLE_EQ(ref_2p_low, ref_2p_high);

    one_phase.setTankLoad(5000.0);
    const Celsius low = one_phase.referenceTemperature(100.0);
    one_phase.setTankLoad(25000.0);
    const Celsius high = one_phase.referenceTemperature(100.0);
    EXPECT_GT(high, low);
}

TEST(SinglePhase, InvalidParametersAreFatal)
{
    EXPECT_THROW(thermal::SinglePhaseImmersionCooling(35.0, 0.0),
                 FatalError);
    thermal::SinglePhaseImmersionCooling one_phase;
    EXPECT_THROW(one_phase.setTankLoad(-1.0), FatalError);
}

// --- Hypervisor bandwidth contention ----------------------------------------------

TEST(Bandwidth, CpuBoundMixNeverSaturates)
{
    vm::HypervisorSim sim(16, {3.4, 2.4, 2.4}, util::Rng(1));
    for (int i = 0; i < 4; ++i)
        sim.addBatchVm(workload::app("BI")); // Almost no memory work.
    sim.run(30.0);
    EXPECT_NEAR(sim.meanBandwidthFactor(), 1.0, 1e-9);
}

TEST(Bandwidth, MemoryHeavyMixSaturatesAndSlowsDown)
{
    // Many memory-bound VMs exceed the host's streaming bandwidth.
    workload::AppProfile hog = workload::app("SQL");
    hog.work = {0.05, 0.05, 0.88, 0.02};
    hog.cores = 8;

    auto run = [&](int vm_count, double &bw_factor) {
        vm::HypervisorSim sim(28, {3.4, 2.4, 2.4}, util::Rng(2));
        for (int i = 0; i < vm_count; ++i)
            sim.addBatchVm(hog);
        sim.run(60.0);
        bw_factor = sim.meanBandwidthFactor();
        return sim.results()[0].throughput;
    };
    double factor_light = 1.0;
    double factor_heavy = 1.0;
    const double light = run(1, factor_light);
    const double heavy = run(3, factor_heavy);
    EXPECT_NEAR(factor_light, 1.0, 0.01);
    EXPECT_LT(factor_heavy, 0.95);
    // Per-VM throughput drops under contention even though pcores are
    // plentiful (24 busy vcores on 28 pcores).
    EXPECT_LT(heavy, light * 0.95);
}

TEST(Bandwidth, MemoryOverclockRelievesContention)
{
    // OC3's faster memory raises host bandwidth and shrinks the
    // saturation penalty — the second thing Fig. 9's SQL row buys.
    workload::AppProfile hog = workload::app("SQL");
    hog.work = {0.05, 0.05, 0.88, 0.02};
    hog.cores = 8;

    auto run = [&](const hw::DomainClocks &clocks) {
        vm::HypervisorSim sim(28, clocks, util::Rng(3));
        for (int i = 0; i < 3; ++i)
            sim.addBatchVm(hog);
        sim.run(60.0);
        return sim.results()[0].throughput;
    };
    const double b2 = run({3.4, 2.4, 2.4});
    const double oc3 = run({4.1, 2.8, 3.0});
    EXPECT_GT(oc3 / b2, 1.15);
}

TEST(Bandwidth, HostBandwidthMatchesStreamModel)
{
    vm::HypervisorSim b2(28, {3.4, 2.4, 2.4}, util::Rng(4));
    vm::HypervisorSim oc3(28, {4.1, 2.8, 3.0}, util::Rng(4));
    EXPECT_GT(oc3.hostBandwidth(), b2.hostBandwidth());
    EXPECT_GT(b2.hostBandwidth(), 80.0);
    EXPECT_LT(b2.hostBandwidth(), 120.0);
}

} // namespace
} // namespace imsim
