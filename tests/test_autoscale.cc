/**
 * @file
 * Unit tests for the auto-scaling module: the frequency grid, Eq. 1
 * frequency selection, the ASC's scale-out/in and scale-up/down
 * behaviours, and the canned experiments' qualitative outcomes.
 */

#include <gtest/gtest.h>

#include "autoscale/autoscaler.hh"
#include "autoscale/experiment.hh"
#include "autoscale/model.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using autoscale::AutoScaler;
using autoscale::AutoScalerConfig;
using autoscale::FrequencyGrid;
using autoscale::Policy;

// --- Frequency grid and selection ---------------------------------------------

TEST(FrequencyGrid, PaperGridHasEightBins)
{
    FrequencyGrid grid(3.4, 4.1, 8);
    EXPECT_EQ(grid.frequencies().size(), 9u);
    EXPECT_DOUBLE_EQ(grid.low(), 3.4);
    EXPECT_DOUBLE_EQ(grid.high(), 4.1);
    EXPECT_NEAR(grid.frequencies()[1] - grid.frequencies()[0], 0.0875,
                1e-9);
}

TEST(FrequencyGrid, SpanFraction)
{
    FrequencyGrid grid(3.4, 4.1, 8);
    EXPECT_DOUBLE_EQ(grid.spanFraction(3.4), 0.0);
    EXPECT_DOUBLE_EQ(grid.spanFraction(4.1), 1.0);
    EXPECT_NEAR(grid.spanFraction(3.75), 0.5, 1e-9);
}

TEST(FrequencySelection, PicksMinimumSufficient)
{
    FrequencyGrid grid(3.4, 4.1, 8);
    // util 0.44 at 3.4 GHz, fully scalable: target 0.40 needs f >= 3.74.
    const GHz f =
        autoscale::minimumSufficientFrequency(grid, 0.44, 1.0, 3.4, 0.40);
    EXPECT_GE(f, 0.44 * 3.4 / 0.40 - 1e-9);
    // And it is the minimal grid point above that.
    EXPECT_LT(f, 0.44 * 3.4 / 0.40 + 0.0875 + 1e-9);
}

TEST(FrequencySelection, FallsBackToMaxWhenInsufficient)
{
    FrequencyGrid grid(3.4, 4.1, 8);
    const GHz f =
        autoscale::minimumSufficientFrequency(grid, 0.9, 1.0, 3.4, 0.40);
    EXPECT_DOUBLE_EQ(f, 4.1);
}

TEST(FrequencySelection, MemoryBoundWorkloadStaysLow)
{
    // With kappa = 0, no frequency helps, and the *lowest* frequency
    // already achieves whatever utilization the load imposes — do not
    // waste power (the paper's warning about indiscriminate scaling-up).
    FrequencyGrid grid(3.4, 4.1, 8);
    const GHz f =
        autoscale::minimumSufficientFrequency(grid, 0.35, 0.0, 4.1, 0.40);
    EXPECT_DOUBLE_EQ(f, 3.4);
}

TEST(FrequencySelection, ScaleDownReturnsLowestSufficient)
{
    FrequencyGrid grid(3.4, 4.1, 8);
    // Light load at max frequency: drop to the floor.
    const GHz f =
        autoscale::minimumSufficientFrequency(grid, 0.10, 0.9, 4.1, 0.40);
    EXPECT_DOUBLE_EQ(f, 3.4);
}

// --- AutoScaler behaviour --------------------------------------------------------

autoscale::ExperimentParams
fastParams(std::uint64_t seed)
{
    autoscale::ExperimentParams params;
    params.seed = seed;
    params.stepDuration = 240.0;
    return params;
}

TEST(AutoScaler, ConfigValidation)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(1), {});
    AutoScalerConfig config;
    config.minVms = 0;
    EXPECT_THROW(AutoScaler(sim, cluster, config), FatalError);
    config.minVms = 2;
    config.maxVms = 1;
    EXPECT_THROW(AutoScaler(sim, cluster, config), FatalError);
}

TEST(AutoScaler, ScalesOutUnderSustainedLoad)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    cp.kappa = 0.9;
    workload::QueueingCluster cluster(sim, util::Rng(2), cp);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::Baseline;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    cluster.setArrivalRate(1100.0); // ~72 % of one VM.
    sim.runUntil(600.0);
    EXPECT_GE(scaler.scaleOuts(), 1u);
    EXPECT_GE(cluster.activeServers(), 2u);
}

TEST(AutoScaler, ScaleOutTakesSixtySeconds)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(3), cp);
    cluster.addServer(3.4);
    AutoScaler scaler(sim, cluster, {});
    scaler.start();
    cluster.setArrivalRate(1200.0);
    // Find the decision tick where the scale-out triggered and check the
    // VM arrives ~60 s later.
    Seconds triggered = -1.0;
    sim.runUntil(1200.0);
    for (const auto &point : scaler.trace()) {
        if (point.scaleOutPending) {
            triggered = point.time;
            break;
        }
    }
    ASSERT_GT(triggered, 0.0);
    // The cluster had 1 server until trigger + 60 s.
    for (const auto &point : scaler.trace()) {
        if (point.time < triggered + 59.0) {
            EXPECT_EQ(point.vms, 1u) << "at " << point.time;
        }
    }
}

TEST(AutoScaler, ScalesInWhenIdle)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(4), cp);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    AutoScaler scaler(sim, cluster, {});
    scaler.start();
    cluster.setArrivalRate(200.0); // ~4 % utilization.
    sim.runUntil(600.0);
    EXPECT_GE(scaler.scaleIns(), 1u);
    EXPECT_LT(cluster.activeServers(), 3u);
}

TEST(AutoScaler, NeverBelowMinOrAboveMax)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(5), cp);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.maxVms = 2;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    cluster.setArrivalRate(4000.0);
    sim.runUntil(900.0);
    EXPECT_LE(cluster.activeServers(), 2u);
    cluster.setArrivalRate(1.0);
    sim.runUntil(1800.0);
    EXPECT_GE(cluster.activeServers(), config.minVms);
}

TEST(AutoScaler, OcaScalesUpBeforeScalingOut)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    cp.kappa = 0.9;
    workload::QueueingCluster cluster(sim, util::Rng(6), cp);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::OcA;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    // Load in the scale-up band (util ~44 % at 3.4 GHz on 2 VMs) that
    // overclocking can bring under the 40 % threshold.
    cluster.setArrivalRate(1350.0);
    sim.runUntil(600.0);
    EXPECT_GT(scaler.fleetFrequency(), 3.4);
    EXPECT_EQ(scaler.scaleOuts(), 0u);
    EXPECT_EQ(cluster.activeServers(), 2u);
}

TEST(AutoScaler, OcaScalesBackDownWhenLoadDrops)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(7), cp);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::OcA;
    config.scaleOutEnabled = false;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    cluster.setArrivalRate(1350.0);
    sim.runUntil(300.0);
    EXPECT_GT(scaler.fleetFrequency(), 3.4);
    cluster.setArrivalRate(200.0);
    sim.runUntil(600.0);
    EXPECT_NEAR(scaler.fleetFrequency(), 3.4, 1e-9);
}

TEST(AutoScaler, OcEOverclocksOnlyDuringScaleOut)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(8), cp);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::OcE;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    cluster.setArrivalRate(1200.0);
    sim.runUntil(1200.0);
    // During scale-out windows the fleet ran at max; afterwards at base.
    bool saw_overclocked_pending = false;
    for (const auto &point : scaler.trace()) {
        if (point.scaleOutPending) {
            EXPECT_DOUBLE_EQ(point.frequency, 4.1);
            saw_overclocked_pending = true;
        }
    }
    EXPECT_TRUE(saw_overclocked_pending);
    EXPECT_DOUBLE_EQ(scaler.fleetFrequency(), 3.4);
}

TEST(AutoScaler, CounterBaselinesArePrunedWithTheFleet)
{
    // Regression: measureScalableFraction() kept a counter baseline per
    // server id forever, so scaled-in or crashed servers leaked entries
    // (and a later re-activated id reused a stale baseline).
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(31), cp);
    for (int i = 0; i < 3; ++i)
        cluster.addServer(3.4);
    AutoScaler scaler(sim, cluster, {});
    cluster.setArrivalRate(600.0);
    sim.runUntil(10.0);

    scaler.measureScalableFraction();
    EXPECT_EQ(scaler.trackedCounterServers(), 3u);

    cluster.crashServer(2);
    scaler.invalidateServerCounters(2);
    EXPECT_EQ(scaler.trackedCounterServers(), 2u);

    // Scale-in without an explicit invalidation: the next measurement
    // prunes the now-inactive id on its own.
    cluster.removeServer();
    scaler.measureScalableFraction();
    EXPECT_EQ(scaler.trackedCounterServers(), 1u);
    cluster.setArrivalRate(0.0);
}

TEST(AutoScaler, FrequencyCeilingCapsOcaScaleUp)
{
    // A cooling-derate ceiling keeps OC-A from overclocking past what
    // the degraded tank can absorb, and lifting it restores the range.
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    cp.kappa = 0.9;
    workload::QueueingCluster cluster(sim, util::Rng(32), cp);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::OcA;
    config.maxVms = 2;
    AutoScaler scaler(sim, cluster, config);
    scaler.setFrequencyCeiling(3.7);
    scaler.start();
    cluster.setArrivalRate(4000.0); // Wants every bit of headroom.
    sim.runUntil(300.0);
    EXPECT_LE(scaler.fleetFrequency(), 3.7 + 1e-9);
    for (const auto &point : scaler.trace())
        EXPECT_LE(point.frequency, 3.7 + 1e-9);

    scaler.setFrequencyCeiling(config.maxFrequency);
    sim.runUntil(600.0);
    EXPECT_GT(scaler.fleetFrequency(), 3.7);
    cluster.setArrivalRate(0.0);
}

TEST(AutoScaler, LoweringTheCeilingDeratesTheFleetImmediately)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params cp;
    cp.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(33), cp);
    cluster.addServer(3.4);
    AutoScalerConfig config;
    config.policy = Policy::OcA;
    AutoScaler scaler(sim, cluster, config);
    scaler.start();
    cluster.setArrivalRate(2500.0);
    sim.runUntil(120.0);
    ASSERT_GT(scaler.fleetFrequency(), 3.6); // Overclocked by now.

    scaler.setFrequencyCeiling(3.5);
    // No decision tick needed: the clamp lands on the spot.
    EXPECT_LE(scaler.fleetFrequency(), 3.5 + 1e-9);
    EXPECT_DOUBLE_EQ(cluster.frequency(0), scaler.fleetFrequency());
    cluster.setArrivalRate(0.0);
}

// --- Canned experiments ---------------------------------------------------------

TEST(Experiment, ValidationKeepsUtilizationNearThreshold)
{
    // Fig. 15: with frequency scaling, the model finds frequencies that
    // pull utilization back toward the 40 % threshold on the 2000 QPS
    // step, which the flat baseline cannot.
    const auto scaled = autoscale::runValidationExperiment(true);
    const auto flat = autoscale::runValidationExperiment(false);

    double max_util_scaled = 0.0;
    double max_freq = 0.0;
    for (const auto &point : scaled.trace) {
        max_util_scaled = std::max(max_util_scaled, point.util30);
        max_freq = std::max(max_freq, point.frequency);
    }
    EXPECT_GT(max_freq, 3.4); // It did scale up.

    // During the 2000 QPS step (600-900 s), the scaled run's late-step
    // utilization sits below the flat baseline's.
    auto util_at = [](const autoscale::AutoScaleOutcome &outcome,
                      Seconds lo, Seconds hi) {
        double total = 0.0;
        int count = 0;
        for (const auto &point : outcome.trace) {
            if (point.time >= lo && point.time <= hi) {
                total += point.util30;
                ++count;
            }
        }
        return count ? total / count : 0.0;
    };
    EXPECT_LT(util_at(scaled, 450.0, 600.0), util_at(flat, 450.0, 600.0));
    EXPECT_EQ(scaled.maxVms, 3u); // Scale-out was disabled.
}

TEST(Experiment, FullRunTableXiShape)
{
    // Table XI's qualitative shape on a shortened staircase: both
    // overclocking policies beat the baseline tail, and OC-A uses the
    // fewest VM-hours.
    const auto baseline =
        autoscale::runFullExperiment(Policy::Baseline, fastParams(21));
    const auto oce = autoscale::runFullExperiment(Policy::OcE,
                                                  fastParams(21));
    const auto oca = autoscale::runFullExperiment(Policy::OcA,
                                                  fastParams(21));

    EXPECT_LT(oce.p95Latency, baseline.p95Latency);
    EXPECT_LT(oca.p95Latency, baseline.p95Latency);
    EXPECT_LT(oca.vmHours, baseline.vmHours);
    EXPECT_LE(oca.maxVms, baseline.maxVms);
    // Overclocking draws more power per VM.
    EXPECT_GT(oca.avgPowerPerVm, baseline.avgPowerPerVm);
    EXPECT_GT(oce.avgFrequency, baseline.avgFrequency - 1e-9);
}

TEST(Experiment, PolicyNames)
{
    EXPECT_EQ(autoscale::policyName(Policy::Baseline), "Baseline");
    EXPECT_EQ(autoscale::policyName(Policy::OcE), "OC-E");
    EXPECT_EQ(autoscale::policyName(Policy::OcA), "OC-A");
}

} // namespace
} // namespace imsim
