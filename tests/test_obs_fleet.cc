/**
 * @file
 * The fleet-observability stack: util::QuantileSketch (mergeable
 * fixed-bin quantiles), obs::FleetAggregator (columnar per-tick
 * reductions), obs::Watchdog (threshold + hysteresis + debounce rule
 * engine), obs::IncidentLog (alert/fault-correlated timelines), the
 * DatacenterPowerSim / QueueingCluster wiring, and the cross-thread
 * reader protocol (FleetAggregator::snapshot, RegistryMirror) the
 * tsan suite exercises.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cluster/datacenter.hh"
#include "fault/experiment.hh"
#include "fleet/state.hh"
#include "obs/obs.hh"
#include "sim/simulation.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "workload/queueing.hh"

using namespace imsim;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------
// util::QuantileSketch.
// ---------------------------------------------------------------------

TEST(QuantileSketch, LinearQuantilesWithinBinResolution)
{
    auto sketch = util::QuantileSketch::linear(0.0, 100.0, 200);
    for (int i = 0; i < 1000; ++i)
        sketch.add(static_cast<double>(i) / 10.0); // Uniform 0..99.9.
    EXPECT_EQ(sketch.count(), 1000u);
    // Bin width 0.5: quantiles must land within one bin of exact.
    EXPECT_NEAR(sketch.quantile(50.0), 50.0, 0.5);
    EXPECT_NEAR(sketch.quantile(95.0), 95.0, 0.5);
    EXPECT_NEAR(sketch.quantile(99.0), 99.0, 0.5);
    EXPECT_NEAR(sketch.quantile(0.0), 0.0, 0.5);
    EXPECT_NEAR(sketch.quantile(100.0), 100.0, 0.5);
}

TEST(QuantileSketch, FiniteOutOfRangeClampsNonFiniteDrops)
{
    auto sketch = util::QuantileSketch::linear(0.0, 10.0, 10);
    sketch.add(-5.0);  // Clamps to the first bin.
    sketch.add(50.0);  // Clamps to the last bin.
    sketch.add(kNan);
    sketch.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(sketch.count(), 2u);
    EXPECT_EQ(sketch.dropped(), 2u);
    EXPECT_GE(sketch.binCount(0), 1u);
    EXPECT_GE(sketch.binCount(sketch.bins() - 1), 1u);
}

TEST(QuantileSketch, LogarithmicCoversDecades)
{
    auto sketch = util::QuantileSketch::logarithmic(1e-4, 100.0, 240);
    sketch.add(1e-3);
    sketch.add(1e-2);
    sketch.add(1e-1);
    sketch.add(1.0);
    // Median of {1e-3, 1e-2, 1e-1, 1} sits between 1e-2 and 1e-1 in
    // log space; 10% relative resolution is plenty at 40 bins/decade.
    const double p50 = sketch.quantile(50.0);
    EXPECT_GT(p50, 5e-3);
    EXPECT_LT(p50, 2e-1);
    // Zero / negative samples clamp into the lowest bin, not dropped.
    sketch.add(0.0);
    EXPECT_EQ(sketch.count(), 5u);
    EXPECT_GE(sketch.binCount(0), 1u);
}

TEST(QuantileSketch, MergeMatchesUnion)
{
    auto a = util::QuantileSketch::linear(0.0, 100.0, 100);
    auto b = util::QuantileSketch::linear(0.0, 100.0, 100);
    auto joint = util::QuantileSketch::linear(0.0, 100.0, 100);
    for (int i = 0; i < 500; ++i) {
        const double lo = static_cast<double>(i % 50);
        const double hi = 50.0 + static_cast<double>(i % 50);
        a.add(lo);
        b.add(hi);
        joint.add(lo);
        joint.add(hi);
    }
    ASSERT_TRUE(a.compatible(b));
    a.merge(b);
    EXPECT_EQ(a.count(), joint.count());
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.quantile(p), joint.quantile(p)) << "p=" << p;
}

TEST(QuantileSketch, MergedQuantileAvoidsMaterializing)
{
    std::vector<util::QuantileSketch> parts;
    auto joint = util::QuantileSketch::linear(0.0, 100.0, 100);
    for (int s = 0; s < 4; ++s) {
        parts.push_back(util::QuantileSketch::linear(0.0, 100.0, 100));
        for (int i = 0; i < 100; ++i) {
            const double v = static_cast<double>((s * 100 + i) % 97);
            parts.back().add(v);
            joint.add(v);
        }
    }
    for (double p : {50.0, 95.0, 99.0}) {
        EXPECT_DOUBLE_EQ(util::QuantileSketch::mergedQuantile(parts, p),
                         joint.quantile(p))
            << "p=" << p;
    }
    // Empty part list: defined zero, not a crash.
    EXPECT_DOUBLE_EQ(util::QuantileSketch::mergedQuantile({}, 50.0), 0.0);
}

TEST(QuantileSketch, IncompatibleMergeIsFatal)
{
    auto a = util::QuantileSketch::linear(0.0, 100.0, 100);
    auto b = util::QuantileSketch::linear(0.0, 100.0, 50);
    auto c = util::QuantileSketch::logarithmic(1e-3, 100.0, 100);
    EXPECT_FALSE(a.compatible(b));
    EXPECT_FALSE(a.compatible(c));
    EXPECT_THROW(a.merge(b), FatalError);
    EXPECT_THROW(util::QuantileSketch::linear(5.0, 5.0, 10), FatalError);
    EXPECT_THROW(util::QuantileSketch::logarithmic(0.0, 1.0, 10),
                 FatalError);
    EXPECT_THROW(a.quantile(101.0), FatalError);
}

TEST(QuantileSketch, EmptySketchMergesAsAccumulator)
{
    // A default-constructed sketch has no geometry: add() drops into
    // dropped() instead of indexing an empty bin vector.
    util::QuantileSketch empty;
    empty.add(1.0);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.dropped(), 1u);

    // Merging an empty sketch in: a no-op beyond its dropped tally.
    auto a = util::QuantileSketch::linear(0.0, 10.0, 10);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.dropped(), 1u);
    EXPECT_EQ(a.bins(), 10u);

    // Merging into an empty sketch adopts the other's geometry while
    // keeping its own dropped tally — the reduce-into-fresh idiom.
    util::QuantileSketch acc;
    acc.add(kNan);
    acc.merge(a);
    EXPECT_EQ(acc.bins(), 10u);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_EQ(acc.dropped(), 2u);
    EXPECT_DOUBLE_EQ(acc.quantile(50.0), a.quantile(50.0));

    // Adoption does not relax the geometry check for real sketches.
    auto b = util::QuantileSketch::linear(0.0, 10.0, 20);
    EXPECT_THROW(acc.merge(b), FatalError);

    // Empty-empty merge stays empty (and still geometry-less).
    util::QuantileSketch e1;
    util::QuantileSketch e2;
    e1.merge(e2);
    EXPECT_EQ(e1.bins(), 0u);
    EXPECT_EQ(e1.count(), 0u);
}

// ---------------------------------------------------------------------
// obs::FleetAggregator.
// ---------------------------------------------------------------------

/** Hand-built two-SKU fleet with exactly known statistics. */
struct TestColumns
{
    std::vector<std::uint32_t> sku{0, 0, 1, 1};
    std::vector<double> util{0.2, 0.4, 0.6, 0.8};
    std::vector<double> power{100.0, 200.0, 300.0, 400.0};
    std::vector<double> tj{50.0, 60.0, 70.0, 80.0};
    std::vector<double> wear{0.0, 0.0, 0.0, 0.0};

    obs::FleetView view() const
    {
        obs::FleetView v;
        v.count = sku.size();
        v.sku = sku.data();
        v.utilization = util.data();
        v.totalPower = power.data();
        v.tj = tj.data();
        v.wearConsumed = wear.data();
        return v;
    }
};

TEST(FleetAggregator, ExactMomentsAndSketchPercentiles)
{
    TestColumns cols;
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 2;
    obs::FleetAggregator agg(cfg);
    agg.observe(60.0, cols.view(), 60.0);

    const obs::FleetSample &sample = agg.latest();
    EXPECT_EQ(sample.units, 4u);
    EXPECT_DOUBLE_EQ(sample.fleetPower, 1000.0);

    const auto &tj = sample.overall[obs::kChanTj];
    EXPECT_DOUBLE_EQ(tj.min, 50.0);
    EXPECT_DOUBLE_EQ(tj.max, 80.0);
    EXPECT_DOUBLE_EQ(tj.mean, 65.0);
    // 150 C over 128 bins: ~1.2 C bins.
    EXPECT_NEAR(tj.p99, 80.0, 1.5);

    // Per-SKU split: SKU 0 holds the cool pair, SKU 1 the hot pair.
    const auto &sku0 = sample.perSku[0 * obs::kFleetChannels +
                                     obs::kChanTj];
    const auto &sku1 = sample.perSku[1 * obs::kFleetChannels +
                                     obs::kChanTj];
    EXPECT_EQ(sku0.count, 2u);
    EXPECT_DOUBLE_EQ(sku0.mean, 55.0);
    EXPECT_DOUBLE_EQ(sku0.max, 60.0);
    EXPECT_EQ(sku1.count, 2u);
    EXPECT_DOUBLE_EQ(sku1.mean, 75.0);
    EXPECT_DOUBLE_EQ(sku1.min, 70.0);
}

TEST(FleetAggregator, WearRateIsPerYearFiniteDifference)
{
    TestColumns cols;
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 2;
    obs::FleetAggregator agg(cfg);

    agg.observe(0.0, cols.view(), 0.0); // First tick: rates read 0.
    EXPECT_DOUBLE_EQ(agg.latest().overall[obs::kChanWearRate].max, 0.0);

    // One hour consumes 1/8766 of life on every server: rate = 1/yr.
    for (double &w : cols.wear)
        w += 1.0 / 8766.0;
    agg.observe(3600.0, cols.view(), 3600.0);
    const auto &rate = agg.latest().overall[obs::kChanWearRate];
    EXPECT_NEAR(rate.mean, 1.0, 1e-9);
    EXPECT_NEAR(rate.min, 1.0, 1e-9);
    EXPECT_NEAR(rate.max, 1.0, 1e-9);
}

TEST(FleetAggregator, RecordsSeriesAndCumulativeSketches)
{
    TestColumns cols;
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 2;
    obs::FleetAggregator agg(cfg);
    agg.observe(60.0, cols.view(), 60.0);
    agg.observe(120.0, cols.view(), 60.0);

    EXPECT_EQ(agg.ticks(), 2u);
    const obs::TimeSeries &series = agg.series();
    EXPECT_EQ(series.rows(), 2u);
    // fleet.units + fleet.power_w + 6 stats x 4 channels.
    EXPECT_EQ(series.columns().size(),
              2u + 6u * static_cast<std::size_t>(obs::kFleetChannels));
    EXPECT_EQ(series.columns().front(), "fleet.units");

    // Cumulative sketch saw every unit of every tick.
    EXPECT_EQ(agg.cumulative(obs::kChanTj).count(), 8u);

    // Disabling recording/cumulative leaves both empty.
    obs::FleetAggregator::Config off;
    off.skuCount = 2;
    off.record = false;
    off.cumulative = false;
    obs::FleetAggregator bare(off);
    bare.observe(60.0, cols.view(), 60.0);
    EXPECT_EQ(bare.series().rows(), 0u);
    EXPECT_EQ(bare.cumulative(obs::kChanTj).count(), 0u);
}

TEST(FleetAggregator, NullColumnsReadAsZeroAndSkuBoundsAreFatal)
{
    obs::FleetAggregator agg; // Defaults: one SKU.
    obs::FleetView view;
    std::vector<double> power{10.0, 20.0};
    view.count = 2;
    view.totalPower = power.data(); // sku/util/tj/wear all null.
    agg.observe(60.0, view, 60.0);
    EXPECT_DOUBLE_EQ(agg.latest().fleetPower, 30.0);
    EXPECT_DOUBLE_EQ(agg.latest().overall[obs::kChanTj].max, 0.0);

    std::vector<std::uint32_t> bad_sku{0, 7}; // skuCount is 1.
    view.sku = bad_sku.data();
    EXPECT_THROW(agg.observe(120.0, view, 60.0), FatalError);
}

TEST(FleetAggregator, SnapshotMatchesLatestAndAttachMetricsPolls)
{
    TestColumns cols;
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 2;
    obs::FleetAggregator agg(cfg);
    obs::MetricRegistry registry;
    agg.attachMetrics(registry, "fleet_agg");
    agg.observe(60.0, cols.view(), 60.0);

    const obs::FleetSample snap = agg.snapshot();
    EXPECT_EQ(snap.units, agg.latest().units);
    EXPECT_DOUBLE_EQ(snap.fleetPower, agg.latest().fleetPower);
    EXPECT_DOUBLE_EQ(snap.overall[obs::kChanTj].p99,
                     agg.latest().overall[obs::kChanTj].p99);

    EXPECT_DOUBLE_EQ(registry.gauge("fleet_agg.units").value(), 4.0);
    EXPECT_DOUBLE_EQ(registry.gauge("fleet_agg.power_w").value(),
                     1000.0);
    EXPECT_DOUBLE_EQ(registry.gauge("fleet_agg.max_tj_c").value(), 80.0);
}

// ---------------------------------------------------------------------
// Sharded observe: bit-identical to the serial reduction for any shard
// plan and any thread count (the intra-run parallelism contract).
// ---------------------------------------------------------------------

// EXPECT_EQ on doubles fails for NaN == NaN, but the identity contract
// is about bit patterns (a NaN-propagating channel must produce the
// same NaN either way), so compare representations.
::testing::AssertionResult
bitIdentical(double a, double b)
{
    if (std::memcmp(&a, &b, sizeof a) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ bitwise";
}

void
expectChannelStatsIdentical(const obs::ChannelStats &a,
                            const obs::ChannelStats &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_TRUE(bitIdentical(a.min, b.min));
    EXPECT_TRUE(bitIdentical(a.mean, b.mean));
    EXPECT_TRUE(bitIdentical(a.max, b.max));
    EXPECT_TRUE(bitIdentical(a.p50, b.p50));
    EXPECT_TRUE(bitIdentical(a.p95, b.p95));
    EXPECT_TRUE(bitIdentical(a.p99, b.p99));
}

void
expectSampleIdentical(const obs::FleetSample &a, const obs::FleetSample &b)
{
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.units, b.units);
    EXPECT_TRUE(bitIdentical(a.fleetPower, b.fleetPower));
    ASSERT_EQ(a.perSku.size(), b.perSku.size());
    for (int c = 0; c < obs::kFleetChannels; ++c)
        expectChannelStatsIdentical(a.overall[c], b.overall[c]);
    for (std::size_t i = 0; i < a.perSku.size(); ++i)
        expectChannelStatsIdentical(a.perSku[i], b.perSku[i]);
}

TEST(FleetAggregator, ShardedObserveIsBitIdenticalToSerial)
{
    // A 1000-unit, 3-SKU fleet with a wear column that advances every
    // tick (so the finite-difference wear-rate path is exercised) and
    // one NaN Tj (the drop path must count identically per shard).
    constexpr std::size_t kUnits = 1000;
    std::vector<std::uint32_t> sku(kUnits);
    std::vector<double> util(kUnits), power(kUnits), tj(kUnits),
        wear(kUnits);
    for (std::size_t i = 0; i < kUnits; ++i) {
        sku[i] = static_cast<std::uint32_t>(i % 3);
        util[i] = static_cast<double>(i % 101) / 100.0;
        power[i] = 150.0 + static_cast<double>(i % 487);
        tj[i] = 35.0 + static_cast<double>(i % 67);
        wear[i] = 0.0;
    }
    tj[kUnits / 2] = kNan;
    obs::FleetView view;
    view.count = kUnits;
    view.sku = sku.data();
    view.utilization = util.data();
    view.totalPower = power.data();
    view.tj = tj.data();
    view.wearConsumed = wear.data();

    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 3;
    constexpr int kTicks = 4;

    obs::FleetAggregator serial(cfg);
    for (int t = 0; t < kTicks; ++t) {
        serial.observe(60.0 * (t + 1), view, 60.0);
        for (auto &w : wear)
            w += 1e-5;
    }

    for (const std::size_t shards : {1u, 3u, 8u}) {
        for (const std::size_t threads : {1u, 2u, 7u}) {
            for (auto &w : wear)
                w = 0.0;
            obs::FleetAggregator sharded(cfg);
            const util::ShardPlan plan =
                util::ShardPlan::even(kUnits, shards);
            util::ShardRunner runner(threads);
            for (int t = 0; t < kTicks; ++t) {
                sharded.observe(60.0 * (t + 1), view, 60.0, plan,
                                runner);
                for (auto &w : wear)
                    w += 1e-5;
            }
            expectSampleIdentical(serial.latest(), sharded.latest());
            expectSampleIdentical(serial.snapshot(), sharded.snapshot());
            ASSERT_EQ(serial.series().rows(), sharded.series().rows());
            for (std::size_t r = 0; r < serial.series().rows(); ++r) {
                const auto &sr = serial.series().row(r);
                const auto &pr = sharded.series().row(r);
                ASSERT_EQ(sr.size(), pr.size());
                for (std::size_t c = 0; c < sr.size(); ++c)
                    EXPECT_TRUE(bitIdentical(sr[c], pr[c]))
                        << "row " << r << " col " << c << " shards "
                        << shards << " threads " << threads;
            }
            for (int c = 0; c < obs::kFleetChannels; ++c) {
                const auto chan = static_cast<obs::FleetChannel>(c);
                EXPECT_EQ(serial.cumulative(chan).count(),
                          sharded.cumulative(chan).count());
                for (double p : {50.0, 95.0, 99.0})
                    EXPECT_TRUE(
                        bitIdentical(serial.cumulative(chan).quantile(p),
                                     sharded.cumulative(chan).quantile(p)));
            }
        }
    }
}

TEST(FleetAggregator, ShardedObserveValidatesPlanAndSku)
{
    obs::FleetAggregator agg; // One SKU.
    std::vector<double> power{10.0, 20.0, 30.0};
    obs::FleetView view;
    view.count = 3;
    view.totalPower = power.data();
    util::ShardRunner runner(2);

    // Plan covering the wrong unit count is fatal.
    const util::ShardPlan wrong = util::ShardPlan::even(5, 2);
    EXPECT_THROW(agg.observe(60.0, view, 60.0, wrong, runner),
                 FatalError);

    // Out-of-range SKU is fatal from the sharded path too.
    std::vector<std::uint32_t> bad_sku{0, 3, 0};
    view.sku = bad_sku.data();
    const util::ShardPlan plan = util::ShardPlan::even(3, 2);
    EXPECT_THROW(agg.observe(60.0, view, 60.0, plan, runner),
                 FatalError);
}

// ---------------------------------------------------------------------
// obs::Watchdog.
// ---------------------------------------------------------------------

TEST(Watchdog, DebounceDelaysRaiseAndHysteresisDelaysClear)
{
    double signal = 0.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "tj";
    rule.kind = obs::AlertKind::TjCeiling;
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 100.0;
    rule.clearThreshold = 90.0;
    rule.debounce = 2.0;
    const std::size_t idx = watchdog.addRule(rule);

    signal = 105.0;
    watchdog.evaluate(0.0); // Breach starts; debounce not yet elapsed.
    watchdog.evaluate(1.0);
    EXPECT_FALSE(watchdog.firing(idx));
    watchdog.evaluate(2.0); // 2 s of persistent breach: page.
    EXPECT_TRUE(watchdog.firing(idx));
    EXPECT_EQ(watchdog.raisedCount(), 1u);

    signal = 95.0; // Below fire but above clear: still firing.
    watchdog.evaluate(3.0);
    EXPECT_TRUE(watchdog.firing(idx));
    signal = 85.0;
    watchdog.evaluate(4.0);
    EXPECT_FALSE(watchdog.firing(idx));
    ASSERT_EQ(watchdog.alerts().size(), 2u);
    EXPECT_TRUE(watchdog.alerts()[0].raised);
    EXPECT_FALSE(watchdog.alerts()[1].raised);
    EXPECT_DOUBLE_EQ(watchdog.firstRaiseAfter(0.0), 2.0);
    EXPECT_DOUBLE_EQ(
        watchdog.firstRaiseAfter(0.0, obs::AlertKind::TjCeiling), 2.0);
    EXPECT_DOUBLE_EQ(
        watchdog.firstRaiseAfter(0.0, obs::AlertKind::Brownout), -1.0);
}

TEST(Watchdog, InterruptedBreachRestartsDebounce)
{
    double signal = 0.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "flappy";
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 1.0;
    rule.debounce = 3.0;
    watchdog.addRule(rule);

    signal = 2.0;
    watchdog.evaluate(0.0);
    watchdog.evaluate(1.0);
    signal = 0.5; // Dip resets the debounce clock.
    watchdog.evaluate(2.0);
    signal = 2.0;
    watchdog.evaluate(3.0);
    watchdog.evaluate(5.0);
    EXPECT_EQ(watchdog.raisedCount(), 0u);
    watchdog.evaluate(6.0); // 3 s since the second onset at t=3.
    EXPECT_EQ(watchdog.raisedCount(), 1u);
}

TEST(Watchdog, NonFiniteSampleChangesNoState)
{
    double signal = 5.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "nan";
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 1.0;
    const std::size_t idx = watchdog.addRule(rule);
    watchdog.evaluate(0.0);
    EXPECT_TRUE(watchdog.firing(idx));
    signal = kNan; // Broken sensor: hold state, don't clear.
    watchdog.evaluate(1.0);
    EXPECT_TRUE(watchdog.firing(idx));
    EXPECT_EQ(watchdog.alerts().size(), 1u);
}

TEST(Watchdog, FireBelowForFluidLevelStyleSignals)
{
    double level = 1.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "fluid";
    rule.kind = obs::AlertKind::FluidLevel;
    rule.signal = [&level] { return level; };
    rule.fireThreshold = 0.9;
    rule.clearThreshold = 0.95;
    rule.fireAbove = false;
    const std::size_t idx = watchdog.addRule(rule);
    watchdog.evaluate(0.0);
    EXPECT_FALSE(watchdog.firing(idx));
    level = 0.8;
    watchdog.evaluate(1.0);
    EXPECT_TRUE(watchdog.firing(idx));
    level = 0.92; // Above fire, below clear: hysteresis holds.
    watchdog.evaluate(2.0);
    EXPECT_TRUE(watchdog.firing(idx));
    level = 0.99;
    watchdog.evaluate(3.0);
    EXPECT_FALSE(watchdog.firing(idx));
}

TEST(Watchdog, ValueExactlyAtThresholdBreachesForBothSenses)
{
    // Breach is inclusive in both directions: signal == fireThreshold
    // raises for fireAbove and fire-below rules alike, and — with no
    // hysteresis — a signal parked exactly on the threshold holds the
    // alert instead of flapping raise/clear every poll.
    double above = 0.0;
    double below = 10.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule high;
    high.name = "high";
    high.signal = [&above] { return above; };
    high.fireThreshold = 5.0;
    const std::size_t hi_idx = watchdog.addRule(high);
    obs::WatchdogRule low;
    low.name = "low";
    low.signal = [&below] { return below; };
    low.fireThreshold = 5.0;
    low.fireAbove = false;
    const std::size_t lo_idx = watchdog.addRule(low);

    above = 5.0;
    below = 5.0;
    watchdog.evaluate(0.0);
    EXPECT_TRUE(watchdog.firing(hi_idx));
    EXPECT_TRUE(watchdog.firing(lo_idx));
    // Parked on the threshold: both alerts hold, no clear/re-raise.
    watchdog.evaluate(1.0);
    watchdog.evaluate(2.0);
    EXPECT_TRUE(watchdog.firing(hi_idx));
    EXPECT_TRUE(watchdog.firing(lo_idx));
    EXPECT_EQ(watchdog.alerts().size(), 2u); // The two raises only.
    // One step past the threshold on the recovery side clears.
    above = 4.999;
    below = 5.001;
    watchdog.evaluate(3.0);
    EXPECT_FALSE(watchdog.firing(hi_idx));
    EXPECT_FALSE(watchdog.firing(lo_idx));
    EXPECT_EQ(watchdog.alerts().size(), 4u);
}

TEST(Watchdog, ExplicitClearEqualToFireDoesNotFlapAtThreshold)
{
    // clearThreshold == fireThreshold (explicitly, not via the NaN
    // default) is valid no-hysteresis config; the boundary value is
    // still a breach, not a recovery.
    double signal = 0.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "edge";
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 5.0;
    rule.clearThreshold = 5.0;
    const std::size_t idx = watchdog.addRule(rule);
    signal = 5.0;
    for (int t = 0; t < 4; ++t)
        watchdog.evaluate(static_cast<double>(t));
    EXPECT_TRUE(watchdog.firing(idx));
    EXPECT_EQ(watchdog.raisedCount(), 1u);
    EXPECT_EQ(watchdog.alerts().size(), 1u);
}

TEST(Watchdog, RuleValidationIsFatal)
{
    obs::Watchdog watchdog;
    obs::WatchdogRule no_signal;
    no_signal.name = "broken";
    EXPECT_THROW(watchdog.addRule(no_signal), FatalError);

    obs::WatchdogRule inverted;
    inverted.name = "inverted";
    inverted.signal = [] { return 0.0; };
    inverted.fireThreshold = 1.0;
    inverted.clearThreshold = 2.0; // Breach side of a fire-above rule.
    EXPECT_THROW(watchdog.addRule(inverted), FatalError);
}

TEST(Watchdog, MetricsPreRegisterEveryAlertCounter)
{
    double signal = 0.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "sla";
    rule.kind = obs::AlertKind::TailLatency;
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 1.0;
    rule.clearThreshold = 0.5;
    watchdog.addRule(rule);

    obs::MetricRegistry registry;
    watchdog.attachMetrics(registry);
    // All counters exist before any alert: a TelemetrySampler started
    // now must never see the registry grow mid-run.
    const std::size_t size_before = registry.size();
    EXPECT_EQ(registry.counter("watchdog.raised").value(), 0u);
    EXPECT_EQ(
        registry.counter("watchdog.raised.tail_latency").value(), 0u);

    signal = 2.0;
    watchdog.evaluate(0.0);
    signal = 0.1;
    watchdog.evaluate(1.0);
    EXPECT_EQ(registry.size(), size_before);
    EXPECT_EQ(registry.counter("watchdog.raised").value(), 1u);
    EXPECT_EQ(registry.counter("watchdog.cleared").value(), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("watchdog.firing").value(), 0.0);
}

// ---------------------------------------------------------------------
// obs::IncidentLog.
// ---------------------------------------------------------------------

TEST(IncidentLog, CorrelatesFaultsAcrossTheLeadWindow)
{
    obs::IncidentLog log(60.0);
    log.noteFault(100.0, "server_crash#3");
    log.noteFault(10.0, "too_old");

    // Opens at 150: adopts the crash at 100 (within 60 s) but not the
    // fault at 10.
    const std::size_t id =
        log.open(150.0, obs::AlertKind::TailLatency, "sla_p99", 0.5,
                 0.1);
    ASSERT_EQ(log.incidents().size(), 1u);
    ASSERT_EQ(log.incidents()[0].faults.size(), 1u);
    EXPECT_EQ(log.incidents()[0].faults[0].label, "server_crash#3");

    // A fault while open attaches too.
    log.noteFault(170.0, "power_derate");
    EXPECT_EQ(log.incidents()[0].faults.size(), 2u);

    log.observeValue(id, 0.9);
    log.observeValue(id, 0.7);
    log.close(id, 200.0);
    const obs::Incident &incident = log.incidents()[0];
    EXPECT_FALSE(incident.open());
    EXPECT_DOUBLE_EQ(incident.peakValue, 0.9);
    EXPECT_DOUBLE_EQ(incident.duration(1000.0), 50.0);

    // Closed incidents no longer adopt faults.
    log.noteFault(210.0, "late");
    EXPECT_EQ(log.incidents()[0].faults.size(), 2u);
    EXPECT_EQ(log.faults().size(), 4u);
}

TEST(IncidentLog, FluidLevelPeakTracksTheMinimum)
{
    obs::IncidentLog log;
    const std::size_t id =
        log.open(0.0, obs::AlertKind::FluidLevel, "fluid", 0.9, 0.95);
    log.observeValue(id, 0.7);
    log.observeValue(id, 0.8);
    EXPECT_DOUBLE_EQ(log.incidents()[0].peakValue, 0.7);
}

TEST(IncidentLog, CloseAllAndTraceExport)
{
    sim::Simulation sim;
    obs::IncidentLog log;
    log.open(10.0, obs::AlertKind::Brownout, "feed", 1.0, 1.0);
    log.open(20.0, obs::AlertKind::TailLatency, "sla", 0.2, 0.1);
    EXPECT_EQ(log.openCount(), 2u);
    log.closeAll(100.0);
    EXPECT_EQ(log.openCount(), 0u);

    obs::EventTracer tracer;
    tracer.enable([&sim] { return sim.now(); });
    log.exportTrace(tracer, 100.0);
    EXPECT_EQ(tracer.size(), 2u);
}

TEST(IncidentLog, JsonDocumentCarriesSchemaAndStructure)
{
    obs::IncidentLog log;
    log.noteFault(5.0, "server_crash#1");
    const std::size_t id =
        log.open(10.0, obs::AlertKind::TailLatency, "sla_p99", 0.25,
                 0.1);
    log.close(id, 40.0);

    const std::string doc = log.toJson("Baseline@3.55");
    EXPECT_NE(doc.find("\"schema\": \"imsim.incidents/1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"label\": \"Baseline@3.55\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"tail_latency\""), std::string::npos);
    EXPECT_NE(doc.find("server_crash#1"), std::string::npos);

    // Multi-point merge keeps the given order.
    obs::IncidentLog other;
    const std::string merged = obs::IncidentLog::mergedJson(
        {{"a", &log}, {"b", &other}}, "{\"seed\": \"42\"}");
    EXPECT_NE(merged.find("\"meta\": {\"seed\": \"42\"}"),
              std::string::npos);
    EXPECT_LT(merged.find("\"label\": \"a\""),
              merged.find("\"label\": \"b\""));
}

// ---------------------------------------------------------------------
// QueueingCluster windowed tail tracking.
// ---------------------------------------------------------------------

TEST(TailTracking, RecentQuantileReflectsTrailingWindowOnly)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 1e-3;
    workload::QueueingCluster cluster(sim, util::Rng(7), params);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    EXPECT_FALSE(cluster.tailTrackingEnabled());
    EXPECT_DOUBLE_EQ(cluster.recentTailQuantile(99.0), 0.0);

    cluster.enableTailTracking(10.0, 5);
    EXPECT_TRUE(cluster.tailTrackingEnabled());
    cluster.setArrivalRate(500.0);
    sim.runUntil(30.0);
    const double p99 = cluster.recentTailQuantile(99.0);
    const double p50 = cluster.recentTailQuantile(50.0);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
    EXPECT_LT(p99, 1.0); // An uncongested ms-scale service time.

    // A long idle gap displaces every bucket: the window forgets.
    cluster.setArrivalRate(0.0);
    sim.runUntil(100.0);
    cluster.setArrivalRate(1.0);
    sim.runUntil(140.0);
    EXPECT_LT(cluster.recentTailQuantile(99.0), 1.0);

    EXPECT_THROW(cluster.enableTailTracking(-1.0), FatalError);
}

// ---------------------------------------------------------------------
// DatacenterPowerSim wiring (both fidelity modes).
// ---------------------------------------------------------------------

std::vector<cluster::RackConfig>
twoRacks()
{
    cluster::RackConfig rack;
    rack.servers = 8;
    return {rack, rack};
}

TEST(DatacenterObservability, RackAggregateModeFeedsRackUnits)
{
    cluster::DatacenterPowerSim dc(twoRacks(), 10000.0);
    obs::FleetAggregator::Config cfg;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    obs::Watchdog watchdog;
    double watched_power = 0.0;
    obs::WatchdogRule rule;
    rule.name = "fleet_power";
    rule.signal = [&agg] { return agg.latest().fleetPower; };
    rule.fireThreshold = 1.0; // Any nonzero fleet power pages.
    watchdog.addRule(rule);
    dc.attachObservability(&agg, &watchdog);

    util::Rng rng(11);
    dc.run(cluster::OverclockPolicy::Never, rng, 0.1);
    EXPECT_EQ(agg.ticks(), 144u); // 0.1 days of minutes.
    EXPECT_EQ(agg.latest().units, 2u); // Units are racks here.
    EXPECT_GT(agg.latest().fleetPower, 0.0);
    EXPECT_GE(watchdog.raisedCount(), 1u);
    (void)watched_power;
}

TEST(DatacenterObservability, PerServerModeFillsAllChannels)
{
    cluster::DatacenterPowerSim dc(twoRacks(), 10000.0);
    dc.enablePerServerFidelity(
        cluster::PerServerPhysics::openComputeImmersed());
    obs::FleetAggregator::Config cfg;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    dc.attachObservability(&agg, nullptr);

    util::Rng rng(11);
    dc.run(cluster::OverclockPolicy::Always, rng, 0.05);
    EXPECT_EQ(agg.latest().units, 16u); // Units are servers here.
    EXPECT_GT(agg.latest().overall[obs::kChanTj].max, 20.0);
    EXPECT_GT(agg.latest().overall[obs::kChanPower].mean, 0.0);
    EXPECT_GE(agg.cumulative(obs::kChanTj).count(), 16u);
}

TEST(DatacenterObservability, ObserversNeverChangeTheOutcome)
{
    const auto racks = twoRacks();
    cluster::DatacenterPowerSim bare(racks, 10000.0);
    cluster::DatacenterPowerSim watched(racks, 10000.0);
    obs::FleetAggregator agg;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "power";
    rule.signal = [&agg] { return agg.latest().fleetPower; };
    rule.fireThreshold = 1.0;
    watchdog.addRule(rule);
    watched.attachObservability(&agg, &watchdog);

    util::Rng rng_a(17);
    util::Rng rng_b(17);
    const auto out_a =
        bare.run(cluster::OverclockPolicy::PowerAware, rng_a, 0.1);
    const auto out_b =
        watched.run(cluster::OverclockPolicy::PowerAware, rng_b, 0.1);
    EXPECT_DOUBLE_EQ(out_a.energyMwh, out_b.energyMwh);
    EXPECT_DOUBLE_EQ(out_a.meanFeedUtilization,
                     out_b.meanFeedUtilization);
    EXPECT_DOUBLE_EQ(out_a.speedupDelivered, out_b.speedupDelivered);
}

// ---------------------------------------------------------------------
// Crisis experiment: detection latency and incident correlation.
// ---------------------------------------------------------------------

TEST(CrisisDetection, WatchdogPagesAndCorrelatesTheCrash)
{
    fault::CrisisParams params;
    params.fleetSize = 5;
    params.serviceMean = 1.04e-2;
    params.qps = 1687.5;
    params.warmup = 60.0;
    params.crisisStart = 180.0;
    params.repairAfter = 120.0;
    params.horizon = 330.0;
    params.slaP99 = 0.400;
    params.maxFrequency = 3.55; // Too little headroom: must page.

    const auto out =
        fault::runCrisisExperiment(autoscale::Policy::Baseline, params);
    EXPECT_GE(out.detectSeconds, 0.0);
    EXPECT_LT(out.detectSeconds, 60.0); // Pages within the crisis.
    EXPECT_GE(out.alertsRaised, 1u);
    ASSERT_GE(out.incidents.incidents().size(), 1u);

    // The SLA incident adopted the crash that caused it.
    const obs::Incident &incident = out.incidents.incidents()[0];
    EXPECT_EQ(incident.kind, obs::AlertKind::TailLatency);
    bool crash_correlated = false;
    for (const auto &fault : incident.faults)
        crash_correlated |=
            fault.label.find("server_crash") != std::string::npos;
    EXPECT_TRUE(crash_correlated);
    // End-of-run closeAll: nothing may stay open in the outcome.
    EXPECT_EQ(out.incidents.openCount(), 0u);
}

// ---------------------------------------------------------------------
// Cross-thread readers (the tsan half of this suite).
// ---------------------------------------------------------------------

TEST(ConcurrentReaders, SnapshotAndMirrorRaceTheObservingThread)
{
    obs::FleetAggregator::Config cfg;
    cfg.skuCount = 2;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    obs::MetricRegistry registry;
    obs::Counter &ticks = registry.counter("sim.ticks");
    obs::RegistryMirror mirror;

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};

    std::thread snapshot_reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const obs::FleetSample sample = agg.snapshot();
            if (sample.units != 0) {
                EXPECT_EQ(sample.units, 4u);
            }
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::thread mirror_reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const double v = mirror.value("sim.ticks", -1.0);
            EXPECT_GE(v, -1.0);
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // The "sim thread": observe + publish at safe points.
    TestColumns cols;
    for (int tick = 0; tick < 2000; ++tick) {
        cols.tj[tick % 4] = 50.0 + static_cast<double>(tick % 40);
        agg.observe(static_cast<double>(tick) * 60.0, cols.view(),
                    60.0);
        ticks.inc();
        mirror.update(registry);
    }
    stop.store(true, std::memory_order_release);
    snapshot_reader.join();
    mirror_reader.join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(agg.ticks(), 2000u);
    EXPECT_EQ(mirror.value("sim.ticks"), 2000.0);
    EXPECT_EQ(mirror.updates(), 2000u);
}

} // namespace
