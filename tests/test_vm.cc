/**
 * @file
 * Unit tests for the hypervisor oversubscription simulator: processor-
 * sharing behaviour, latency degradation under oversubscription, and
 * overclocking's ability to compensate (the mechanisms behind Figs. 12
 * and 13).
 */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"
#include "vm/hypervisor.hh"
#include "vm/vm.hh"
#include "workload/app.hh"

namespace imsim {
namespace {

hw::DomainClocks
b2()
{
    return hw::DomainClocks{3.4, 2.4, 2.4};
}

hw::DomainClocks
oc3()
{
    return hw::DomainClocks{4.1, 2.8, 3.0};
}

TEST(Hypervisor, VcoreAccounting)
{
    vm::HypervisorSim sim(16, b2(), util::Rng(1));
    sim.addLatencyVm(workload::app("SQL"), 500.0);
    sim.addBatchVm(workload::app("BI"));
    EXPECT_EQ(sim.totalVcores(), 8);
    EXPECT_EQ(sim.pcores(), 16);
}

TEST(Hypervisor, LatencyVmServesRequests)
{
    vm::HypervisorSim sim(8, b2(), util::Rng(2));
    sim.addLatencyVm(workload::app("SQL"), 400.0);
    sim.run(60.0);
    const auto results = sim.results();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].completed, 20000u);
    EXPECT_GT(results[0].p95Latency, 0.0);
    EXPECT_GE(results[0].p99Latency, results[0].p95Latency);
}

TEST(Hypervisor, BatchVmMakesProgress)
{
    vm::HypervisorSim sim(8, b2(), util::Rng(3));
    sim.addBatchVm(workload::app("BI"));
    sim.run(60.0);
    const auto results = sim.results();
    EXPECT_GT(results[0].throughput, 1.0);
    EXPECT_GT(results[0].busyFraction, 0.8); // BI has little IO.
}

TEST(Hypervisor, BatchIoFractionLowersBusyFraction)
{
    vm::HypervisorSim sim(16, b2(), util::Rng(4));
    sim.addBatchVm(workload::app("BI"));       // io = 0.05
    sim.addBatchVm(workload::app("TeraSort")); // io = 0.35
    sim.run(120.0);
    const auto results = sim.results();
    EXPECT_GT(results[0].busyFraction, results[1].busyFraction);
    EXPECT_NEAR(results[1].busyFraction, 0.65, 0.08);
}

TEST(Hypervisor, OversubscriptionDegradesLatency)
{
    // 4 SQL VMs x 4 vcores on 16 vs 8 pcores (Fig. 12's endpoints).
    auto run = [](int pcores) {
        vm::HypervisorSim sim(pcores, b2(), util::Rng(5));
        for (int i = 0; i < 4; ++i)
            sim.addLatencyVm(workload::app("SQL"), 520.0);
        sim.run(20.0);
        sim.resetStats();
        sim.run(80.0);
        double total = 0.0;
        for (const auto &res : sim.results())
            total += res.p95Latency;
        return total / 4.0;
    };
    EXPECT_GT(run(8), 1.15 * run(16));
}

TEST(Hypervisor, OverclockingCompensatesOversubscription)
{
    // Fig. 12's crossover: OC3 with 12 pcores matches (or beats) B2 with
    // 16 pcores, while B2 with 12 pcores is clearly worse — i.e. the
    // provider frees 4 pcores at no latency cost.
    auto run = [](int pcores, const hw::DomainClocks &clocks) {
        vm::HypervisorSim sim(pcores, clocks, util::Rng(6));
        for (int i = 0; i < 4; ++i)
            sim.addLatencyVm(workload::app("SQL"), 520.0);
        sim.run(20.0);
        sim.resetStats();
        sim.run(100.0);
        double total = 0.0;
        for (const auto &res : sim.results())
            total += res.p95Latency;
        return total / 4.0;
    };
    const double b2_16 = run(16, b2());
    const double b2_12 = run(12, b2());
    const double oc3_12 = run(12, oc3());
    EXPECT_LE(oc3_12, b2_16 * 1.05);
    EXPECT_LT(oc3_12, b2_12 * 0.95);
}

TEST(Hypervisor, BatchThroughputScalesWithShare)
{
    // Two identical batch VMs on half the cores they want run at about
    // half speed each.
    auto run = [](int pcores) {
        vm::HypervisorSim sim(pcores, b2(), util::Rng(7));
        sim.addBatchVm(workload::app("BI"));
        sim.addBatchVm(workload::app("BI"));
        sim.run(120.0);
        return sim.results()[0].throughput;
    };
    const double full = run(8);
    const double half = run(4);
    EXPECT_NEAR(half / full, 0.5, 0.08);
}

TEST(Hypervisor, OverclockLiftsBatchThroughput)
{
    auto run = [](const hw::DomainClocks &clocks) {
        vm::HypervisorSim sim(8, clocks, util::Rng(8));
        sim.addBatchVm(workload::app("BI"));
        sim.run(120.0);
        return sim.results()[0].throughput;
    };
    // BI's CPU-normalised OC3 speedup is ~17 %.
    EXPECT_NEAR(run(oc3()) / run(b2()), 1.18, 0.05);
}

TEST(Hypervisor, HostActivityReflectsLoad)
{
    vm::HypervisorSim sim(16, b2(), util::Rng(9));
    sim.addBatchVm(workload::app("BI")); // 4 busy vcores of 16.
    sim.run(60.0);
    EXPECT_NEAR(sim.hostActivity(), 4.0 / 16.0, 0.03);
    EXPECT_GE(sim.hostActivityP99(), sim.hostActivity() - 0.05);
}

TEST(Hypervisor, ResetStatsClearsHistory)
{
    vm::HypervisorSim sim(8, b2(), util::Rng(10));
    sim.addLatencyVm(workload::app("SQL"), 300.0);
    sim.run(30.0);
    sim.resetStats();
    const auto results = sim.results();
    EXPECT_EQ(results[0].completed, 0u);
}

TEST(Hypervisor, MixedScenarioLatencySuffersMostUnderOversubscription)
{
    // Fig. 13: under B2 oversubscription, latency-sensitive apps degrade
    // more than batch apps.
    auto run = [](int pcores) {
        vm::HypervisorSim sim(pcores, b2(), util::Rng(11));
        sim.addLatencyVm(workload::app("SQL"), 520.0);
        sim.addBatchVm(workload::app("BI"));
        sim.addBatchVm(workload::app("SPECJBB"));
        sim.addBatchVm(workload::app("TeraSort"));
        sim.addBatchVm(workload::app("TeraSort"));
        sim.run(20.0);
        sim.resetStats();
        sim.run(100.0);
        return sim.results();
    };
    const auto full = run(20);
    const auto oversub = run(16);
    const double sql_degradation =
        oversub[0].p95Latency / full[0].p95Latency;
    const double bi_degradation = full[1].throughput / oversub[1].throughput;
    EXPECT_GT(sql_degradation, 1.0);
    EXPECT_GT(sql_degradation, bi_degradation);
}

TEST(Hypervisor, InvalidConfigurationIsFatal)
{
    EXPECT_THROW(vm::HypervisorSim(0, b2(), util::Rng(1)), FatalError);
    vm::HypervisorSim sim(8, b2(), util::Rng(1));
    EXPECT_THROW(sim.addLatencyVm(workload::app("SQL"), -1.0), FatalError);
    EXPECT_THROW(sim.addLatencyVm(workload::app("BI"), 100.0), FatalError);
    EXPECT_THROW(sim.run(-1.0), FatalError);
}

TEST(VmSpec, DefaultsAreSane)
{
    vm::VmSpec spec;
    EXPECT_EQ(spec.vcores, 4);
    EXPECT_GT(spec.memoryGb, 0.0);
    vm::HostSpec host;
    EXPECT_EQ(host.pcores, 40);
}

} // namespace
} // namespace imsim
