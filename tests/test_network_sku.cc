/**
 * @file
 * Unit tests for the thermal RC network (multi-node heat path, transient
 * bursts, condenser failure, thermal-cycling amplitudes) and the
 * high-performance VM SKU economics.
 */

#include <gtest/gtest.h>

#include "core/sku.hh"
#include "reliability/lifetime.hh"
#include "thermal/network.hh"
#include "util/logging.hh"
#include "workload/app.hh"

namespace imsim {
namespace {

using thermal::ThermalNetwork;

TEST(ThermalNetwork, SteadyStateMatchesSeriesResistance)
{
    // Single node to ambient: T = Tamb + R * P.
    ThermalNetwork net;
    const auto node = net.addNode("part", 50.0, 25.0);
    const auto ambient = net.addAmbient("ambient", 25.0);
    net.couple(node, ambient, 0.1);
    net.inject(node, 200.0);
    net.settle();
    EXPECT_NEAR(net.temperature(node), 25.0 + 0.1 * 200.0, 1e-6);
}

TEST(ThermalNetwork, ChainSumsResistances)
{
    ThermalNetwork net;
    const auto a = net.addNode("a", 10.0, 20.0);
    const auto b = net.addNode("b", 10.0, 20.0);
    const auto ambient = net.addAmbient("amb", 20.0);
    net.couple(a, b, 0.05);
    net.couple(b, ambient, 0.15);
    net.inject(a, 100.0);
    net.settle();
    EXPECT_NEAR(net.temperature(a), 20.0 + 0.20 * 100.0, 1e-6);
    EXPECT_NEAR(net.temperature(b), 20.0 + 0.15 * 100.0, 1e-6);
}

TEST(ThermalNetwork, StepConvergesToSettle)
{
    ThermalNetwork net;
    const auto node = net.addNode("part", 100.0, 20.0);
    const auto ambient = net.addAmbient("amb", 20.0);
    net.couple(node, ambient, 0.1);
    net.inject(node, 150.0);
    for (int i = 0; i < 600; ++i)
        net.step(1.0); // 10 minutes, tau = 10 s.
    EXPECT_NEAR(net.temperature(node), 35.0, 0.01);
}

TEST(ThermalNetwork, ImmersedCpuSteadyStateMatchesTableIii)
{
    // The canned network's die temperature at 204 W should land near
    // the simple junction model's Table III values.
    auto rig = thermal::makeImmersedCpuNetwork(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    rig.network.inject(rig.die, 204.0);
    rig.network.settle();
    // Fluid warms slightly above its boiling point against the
    // condenser; die sits ~Rth * P above it.
    EXPECT_NEAR(rig.network.temperature(rig.die), 67.0, 3.0);
    EXPECT_GT(rig.network.temperature(rig.spreader),
              rig.network.temperature(rig.fluid));
}

TEST(ThermalNetwork, FluidInertiaDampsBursts)
{
    // A 60-second full-power burst barely moves the tank fluid but
    // swings the die — the narrow-cycling story of Table V.
    auto rig = thermal::makeImmersedCpuNetwork(thermal::hfe7000());
    rig.network.inject(rig.die, 60.0); // Idle-ish.
    rig.network.settle();
    rig.network.resetExtremes();
    const Celsius fluid_before = rig.network.temperature(rig.fluid);

    rig.network.inject(rig.die, 305.0); // Overclocked burst.
    rig.network.step(60.0);
    const Celsius die_swing = rig.network.maxSeen(rig.die) -
                              rig.network.minSeen(rig.die);
    const Celsius fluid_swing =
        rig.network.temperature(rig.fluid) - fluid_before;
    EXPECT_GT(die_swing, 5.0);
    EXPECT_LT(fluid_swing, 1.0);
}

TEST(ThermalNetwork, CondenserFailureHeatsFluidSlowly)
{
    // Without the condenser, 700 W into 100 kg of fluid heats it about
    // 0.38 C/min — the operator has minutes, not milliseconds.
    ThermalNetwork net;
    const auto fluid = net.addNode("fluid", 100.0 * 1100.0, 50.0);
    net.inject(fluid, 700.0);
    net.step(600.0);
    EXPECT_NEAR(net.temperature(fluid),
                50.0 + 700.0 * 600.0 / (100.0 * 1100.0), 0.01);
}

TEST(ThermalNetwork, CyclingAmplitudeFeedsLifetimeModel)
{
    // Duty-cycled load on the immersed die: the observed min/max feed a
    // StressCondition whose lifetime lands in the immersion band.
    auto rig = thermal::makeImmersedCpuNetwork(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    rig.network.inject(rig.die, 205.0);
    rig.network.settle();
    rig.network.resetExtremes();
    for (int cycle = 0; cycle < 20; ++cycle) {
        rig.network.inject(rig.die, 205.0);
        rig.network.step(30.0);
        rig.network.inject(rig.die, 30.0);
        rig.network.step(30.0);
    }
    reliability::StressCondition cond;
    cond.voltage = 0.90;
    cond.tjMax = rig.network.maxSeen(rig.die);
    cond.tMin = rig.network.minSeen(rig.die);
    cond.freqRatio = 1.0;
    const reliability::LifetimeModel model;
    EXPECT_GT(model.lifetime(cond), 8.0); // Immersion band.
    EXPECT_LT(cond.swing(), 30.0);        // Narrow cycles.
}

TEST(ThermalNetwork, InvalidUsageIsFatal)
{
    ThermalNetwork net;
    const auto a = net.addNode("a", 10.0, 20.0);
    EXPECT_THROW(net.addNode("bad", 0.0, 20.0), FatalError);
    EXPECT_THROW(net.couple(a, a, 0.1), FatalError);
    EXPECT_THROW(net.couple(a, 99, 0.1), FatalError);
    EXPECT_THROW(net.inject(a, -5.0), FatalError);
    EXPECT_THROW(net.temperature(99), FatalError);
    EXPECT_THROW(net.step(-1.0), FatalError);
}

// --- SKU economics ---------------------------------------------------------------

TEST(Sku, CoreBoundSkuIsSellable)
{
    // BI-class VMs: ~17 % speedup from OC1 at ~90 W extra server power.
    const auto econ = core::priceHighPerfSku(
        workload::app("BI"), 4, 90.0, /*wear_per_hour=*/2.4e-6);
    EXPECT_EQ(econ.configName, "OC1");
    EXPECT_GT(econ.speedup, 1.10);
    EXPECT_GT(econ.breakEvenPremium, 0.0);
    EXPECT_LT(econ.breakEvenPremium, econ.valuePremium);
    EXPECT_TRUE(econ.sellable);
}

TEST(Sku, WearDominatedSkuCanBeUnsellable)
{
    // Air-cooled-style wear (burning a 5-year part in <1 year) makes the
    // premium uneconomical.
    const double harsh_wear = 1.0 / (0.8 * units::kHoursPerYear);
    const auto econ = core::priceHighPerfSku(workload::app("BI"), 4,
                                             90.0, harsh_wear);
    EXPECT_FALSE(econ.sellable);
    EXPECT_GT(econ.wearCostPerVmHour, econ.extraEnergyCostPerVmHour);
}

TEST(Sku, EnergyCostScalesWithPower)
{
    const auto low = core::priceHighPerfSku(workload::app("SPECJBB"), 4,
                                            50.0, 2.4e-6);
    const auto high = core::priceHighPerfSku(workload::app("SPECJBB"), 4,
                                             200.0, 2.4e-6);
    EXPECT_NEAR(high.extraEnergyCostPerVmHour,
                4.0 * low.extraEnergyCostPerVmHour, 1e-12);
}

TEST(Sku, InvalidInputsAreFatal)
{
    EXPECT_THROW(
        core::priceHighPerfSku(workload::app("BI"), 0, 90.0, 1e-6),
        FatalError);
    EXPECT_THROW(
        core::priceHighPerfSku(workload::app("BI"), 4, -1.0, 1e-6),
        FatalError);
}

} // namespace
} // namespace imsim
