/**
 * @file
 * Unit tests for the reliability substrate: the composite lifetime model
 * pinned to the six Table V anchors, monotonicity of the mechanisms
 * (Table IV dependencies), wear/credit accounting, and the stability
 * model calibrated to the paper's 6-month error campaign.
 */

#include <gtest/gtest.h>

#include "reliability/lifetime.hh"
#include "reliability/mechanisms.hh"
#include "reliability/stability.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace imsim {
namespace {

using reliability::LifetimeModel;
using reliability::StressCondition;

const LifetimeModel &
model()
{
    static const LifetimeModel m;
    return m;
}

StressCondition
scenario(const char *cooling, bool oc)
{
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (std::string(scenarios[i].cooling) == cooling &&
            scenarios[i].overclocked == oc)
            return scenarios[i].condition;
    }
    util::fatal("unknown Table V scenario");
}

// --- Table V anchors -----------------------------------------------------

TEST(TableV, AirNominalIsFiveYears)
{
    EXPECT_NEAR(model().lifetime(scenario("Air cooling", false)), 5.0, 0.3);
}

TEST(TableV, AirOverclockedUnderOneYear)
{
    EXPECT_LT(model().lifetime(scenario("Air cooling", true)), 1.0);
}

TEST(TableV, Fc3284NominalExceedsTenYears)
{
    EXPECT_GT(model().lifetime(scenario("FC-3284", false)), 10.0);
}

TEST(TableV, Fc3284OverclockedAboutFourYears)
{
    EXPECT_NEAR(model().lifetime(scenario("FC-3284", true)), 4.0, 0.5);
}

TEST(TableV, Hfe7000NominalExceedsTenYears)
{
    EXPECT_GT(model().lifetime(scenario("HFE-7000", false)), 10.0);
}

TEST(TableV, Hfe7000OverclockedMatchesAirBaseline)
{
    // The paper's headline: overclocking in HFE-7000 keeps the air-cooled
    // baseline's 5-year lifetime.
    const Years air = model().lifetime(scenario("Air cooling", false));
    const Years hfe_oc = model().lifetime(scenario("HFE-7000", true));
    EXPECT_NEAR(hfe_oc, air, 0.5);
}

TEST(TableV, ScenarioTableHasSixRows)
{
    std::size_t count = 0;
    reliability::tableVScenarios(count);
    EXPECT_EQ(count, 6u);
}

// --- Mechanism behaviour (Table IV dependencies) -------------------------

TEST(Mechanisms, GateOxideAcceleratesWithVoltage)
{
    EXPECT_GT(reliability::gateOxideRate(0.98, 85.0),
              reliability::gateOxideRate(0.90, 85.0));
}

TEST(Mechanisms, GateOxideAcceleratesWithTemperature)
{
    EXPECT_GT(reliability::gateOxideRate(0.90, 101.0),
              reliability::gateOxideRate(0.90, 85.0));
}

TEST(Mechanisms, GateOxideSuperArrheniusAtHighTemperature)
{
    // The per-degree acceleration grows with temperature (the paper's
    // non-Arrhenius reference [19]).
    const double low = reliability::gateOxideRate(0.90, 70.0) /
                       reliability::gateOxideRate(0.90, 60.0);
    const double high = reliability::gateOxideRate(0.90, 100.0) /
                        reliability::gateOxideRate(0.90, 90.0);
    EXPECT_GT(high, low);
}

TEST(Mechanisms, GateOxideClampsBelowVertex)
{
    // Below the quadratic's vertex the rate stops improving: colder
    // silicon no longer slows voltage-driven breakdown.
    EXPECT_NEAR(reliability::gateOxideRate(0.90, 30.0),
                reliability::gateOxideRate(0.90, 40.0), 1e-12);
}

TEST(Mechanisms, ElectromigrationFollowsBlacksLaw)
{
    // Quadratic in current density.
    const double j1 = reliability::electromigrationRate(0.90, 85.0, 1.0);
    const double j2 = reliability::electromigrationRate(0.90, 85.0, 2.0);
    EXPECT_NEAR(j2 / j1, 4.0, 1e-9);
    // Arrhenius in temperature.
    EXPECT_GT(reliability::electromigrationRate(0.90, 100.0, 1.0), j1);
}

TEST(Mechanisms, ThermalCyclingDependsOnSwingOnly)
{
    const double small = reliability::thermalCyclingRate(15.0);
    const double large = reliability::thermalCyclingRate(65.0);
    EXPECT_GT(large, small);
    EXPECT_DOUBLE_EQ(reliability::thermalCyclingRate(0.0), 0.0);
    EXPECT_THROW(reliability::thermalCyclingRate(-1.0), FatalError);
}

TEST(Mechanisms, ImmersionNarrowSwingSuppressesCycling)
{
    // Air cycles 20-85 C; FC-3284 cycles 50-66 C. The Coffin-Manson term
    // must be an order of magnitude smaller in immersion.
    const double air = reliability::thermalCyclingRate(65.0);
    const double immersion = reliability::thermalCyclingRate(16.0);
    EXPECT_GT(air / immersion, 10.0);
}

TEST(LifetimeModel, BreakdownSumsToTotal)
{
    const auto rates = model().failureRate(scenario("Air cooling", false));
    EXPECT_NEAR(rates.total,
                rates.gateOxide + rates.electromigration +
                    rates.thermalCycling,
                1e-12);
}

TEST(LifetimeModel, LifetimeMonotonicInVoltage)
{
    StressCondition cond = scenario("FC-3284", false);
    Years prev = 1e9;
    for (Volts v = 0.90; v <= 1.05; v += 0.02) {
        cond.voltage = v;
        const Years life = model().lifetime(cond);
        EXPECT_LT(life, prev);
        prev = life;
    }
}

TEST(LifetimeModel, InvalidConditionIsFatal)
{
    StressCondition cond;
    cond.tMin = 90.0;
    cond.tjMax = 80.0;
    EXPECT_THROW(model().failureRate(cond), FatalError);
}

// --- Green-band sizing ----------------------------------------------------

TEST(GreenBand, Hfe7000SustainsRoughly23Percent)
{
    // Fig. 5(b): in HFE-7000 the green band reaches ~23 % above nominal
    // while preserving the 5-year design life (Tj anchors from Table V).
    const double ratio = model().maxFrequencyRatioForLifetime(
        51.0, 60.0, 35.0, 5.0);
    EXPECT_NEAR(ratio, 1.23, 0.08);
}

TEST(GreenBand, AirCannotSustainOverclocking)
{
    const double ratio = model().maxFrequencyRatioForLifetime(
        85.0, 101.0, 20.0, 5.0);
    EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(GreenBand, RelaxedTargetAllowsRedBand)
{
    // Accepting a 4-year life (FC-3284 OC row) unlocks more frequency.
    const double strict = model().maxFrequencyRatioForLifetime(
        66.0, 74.0, 50.0, 10.0);
    const double relaxed = model().maxFrequencyRatioForLifetime(
        66.0, 74.0, 50.0, 4.0);
    EXPECT_GT(relaxed, strict);
}

// --- Wear tracking ---------------------------------------------------------

TEST(WearTracker, NominalAirConsumesDesignBudget)
{
    reliability::WearTracker tracker(model(), 5.0);
    tracker.accrue(scenario("Air cooling", false), 5.0);
    EXPECT_NEAR(tracker.consumed(), 1.0, 0.06);
    EXPECT_NEAR(tracker.age(), 5.0, 1e-12);
}

TEST(WearTracker, ImmersionAccruesCredit)
{
    reliability::WearTracker tracker(model(), 5.0);
    tracker.accrue(scenario("HFE-7000", false), 2.0);
    // Two years in HFE-7000 nominal consume well under 2/5 of life.
    EXPECT_GT(tracker.credit(), 0.1);
}

TEST(WearTracker, CreditCanBeSpentOnOverclocking)
{
    reliability::WearTracker tracker(model(), 5.0);
    tracker.accrue(scenario("HFE-7000", false), 2.0);
    // Afford a year of overclocking thanks to the accrued credit.
    EXPECT_TRUE(tracker.canAfford(scenario("HFE-7000", true), 1.0));
}

TEST(WearTracker, AirOverclockingIsUnaffordable)
{
    reliability::WearTracker tracker(model(), 5.0);
    EXPECT_FALSE(tracker.canAfford(scenario("Air cooling", true), 1.0));
}

TEST(WearTracker, ModerateUtilizationSlowsWear)
{
    StressCondition busy = scenario("HFE-7000", true);
    StressCondition idle = busy;
    idle.dutyCycle = 0.4;
    EXPECT_LT(model().wearFraction(idle, 1.0),
              model().wearFraction(busy, 1.0));
}

TEST(WearTracker, IdleFloorPreventsZeroWear)
{
    StressCondition cond = scenario("HFE-7000", false);
    cond.dutyCycle = 0.0;
    EXPECT_GT(model().wearFraction(cond, 1.0), 0.0);
}

// --- Stability -------------------------------------------------------------

TEST(Stability, SixMonthCalibration)
{
    // Tank #2 logged 56 correctable errors in ~6 months at the +50 mV
    // offset; tank #1 logged none.
    const auto tank2 = reliability::StabilityModel::tank2Part();
    const double hours = 0.5 * units::kHoursPerYear;
    EXPECT_NEAR(tank2.correctableErrorRate(50.0) * hours, 56.0, 8.0);

    const auto tank1 = reliability::StabilityModel::tank1Part();
    EXPECT_LT(tank1.correctableErrorRate(50.0) * hours, 1.0);
}

TEST(Stability, ErrorsGrowAsMarginShrinks)
{
    const auto model_part = reliability::StabilityModel::tank2Part();
    EXPECT_GT(model_part.correctableErrorRate(0.0),
              model_part.correctableErrorRate(50.0));
    EXPECT_GT(model_part.correctableErrorRate(-20.0),
              model_part.correctableErrorRate(0.0));
}

TEST(Stability, CrashesOnlyWhenPushedTooFar)
{
    const auto part = reliability::StabilityModel::tank2Part();
    // At the stock +50 mV offset a year of operation crashes with
    // negligible probability...
    EXPECT_LT(part.crashRate(50.0) * units::kHoursPerYear, 0.01);
    // ...but past the curve (negative margin) the server dies within
    // hours, matching the paper's "ungraceful crash" observation.
    EXPECT_GT(part.crashRate(-10.0), 0.5);
}

TEST(Stability, SilentErrorsAreRareFractionOfCorrectable)
{
    const auto part = reliability::StabilityModel::tank2Part();
    EXPECT_LT(part.silentErrorRate(20.0),
              1e-3 * part.correctableErrorRate(20.0) + 1e-12);
}

TEST(Stability, SamplingMatchesRates)
{
    const auto part = reliability::StabilityModel::tank2Part();
    util::Rng rng(13);
    double total = 0.0;
    const int trials = 400;
    for (int i = 0; i < trials; ++i)
        total += static_cast<double>(part.sampleErrors(rng, 1000.0, 30.0));
    const double expected = part.correctableErrorRate(30.0) * 1000.0;
    EXPECT_NEAR(total / trials, expected, expected * 0.2 + 0.05);
}

TEST(Watchdog, TripsOnErrorBurst)
{
    reliability::ErrorRateWatchdog watchdog(3600.0, 10.0);
    watchdog.record(0.0, 0);
    watchdog.record(1800.0, 2);
    EXPECT_FALSE(watchdog.tripped(1800.0));
    watchdog.record(3600.0, 50); // 48 errors in half an hour.
    EXPECT_TRUE(watchdog.tripped(3600.0));
}

TEST(Watchdog, RateUsesTrailingWindow)
{
    reliability::ErrorRateWatchdog watchdog(3600.0, 10.0);
    watchdog.record(0.0, 0);
    watchdog.record(3600.0, 100); // Burst inside the first hour.
    watchdog.record(7200.0, 100); // Quiet second hour.
    watchdog.record(10800.0, 100);
    EXPECT_NEAR(watchdog.ratePerHour(10800.0), 0.0, 1e-9);
    EXPECT_FALSE(watchdog.tripped(10800.0));
}

TEST(Watchdog, BackwardCounterIsFatal)
{
    reliability::ErrorRateWatchdog watchdog;
    watchdog.record(0.0, 10);
    EXPECT_THROW(watchdog.record(10.0, 5), FatalError);
}

} // namespace
} // namespace imsim
