/**
 * @file
 * Fleet-layer tests: the scalar-vs-batched equivalence oracle that holds
 * the FP-identity contract of fleet/kernels.hh (a batched step must be
 * bit-for-bit equal to stepping the scalar ThermalNode /
 * SocketPowerModel / WearTracker objects one server at a time), edge
 * cases of the columnar state, and the DatacenterPowerSim run-overload
 * regression (the non-telemetry overload must forward to the telemetry
 * one and produce an identical outcome).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "cluster/datacenter.hh"
#include "fleet/kernels.hh"
#include "fleet/state.hh"
#include "obs/fleet_agg.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "power/server_power.hh"
#include "power/socket_power.hh"
#include "reliability/lifetime.hh"
#include "thermal/cooling.hh"
#include "thermal/fluid.hh"
#include "thermal/junction.hh"
#include "util/random.hh"
#include "util/shard.hh"

namespace imsim {
namespace {

// ---------------------------------------------------------------------
// Scalar reference: one server of per-object state, stepped through the
// public scalar APIs exactly as a per-object fleet loop would.
// ---------------------------------------------------------------------

struct ScalarServer
{
    power::SocketPowerModel socket;
    thermal::ThermalNode node;
    reliability::WearTracker tracker;
    const thermal::CoolingSystem *cooling;
    GHz frequency;
    double utilization;
    Celsius tMin;
};

/// One scalar minute: SocketPowerModel -> ThermalNode -> WearTracker,
/// the coupling order the batched stepAll mirrors (leakage reads the
/// previous step's Tj, wear reads the new one).
void
stepScalar(ScalarServer &sv, Seconds dt)
{
    const power::VfCurve &vf = sv.socket.curve();
    const Volts volt = vf.voltageFor(sv.frequency);
    const power::OperatingPoint op{sv.frequency, volt, sv.utilization};
    const Watts dyn = sv.socket.dynamicPower(op);
    const Watts leak = sv.socket.leakagePower(sv.node.temperature());
    const Celsius ref = sv.cooling->referenceTemperature(dyn + leak);
    sv.node.step(dt, dyn + leak, ref);
    reliability::StressCondition cond;
    cond.voltage = volt;
    cond.tjMax = sv.node.temperature();
    cond.tMin = sv.tMin;
    cond.freqRatio = sv.frequency / vf.nominalFrequency();
    cond.dutyCycle = sv.utilization;
    sv.tracker.accrue(cond, fleet::secondsToYears(dt));
}

// ---------------------------------------------------------------------
// Fixtures: SKU tables and matched scalar/batched fleets.
// ---------------------------------------------------------------------

/// Mixed SKU table: the paper's immersed Open Compute blade (SKU 0)
/// plus an air-cooled variant of the same blade (SKU 1).
std::vector<fleet::SkuParams>
mixedSkus()
{
    auto physics = cluster::PerServerPhysics::openComputeImmersed();
    std::vector<fleet::SkuParams> skus = std::move(physics.skus);
    const auto server = power::ServerPowerModel::openComputeBlade();
    const thermal::AirCooling air;
    skus.push_back(fleet::SkuParams::fromModels(
        server.socketModel(), server.socketCount(),
        /*constant_power=*/200.0, air, /*thermal_cap=*/400.0,
        /*oc_ratio=*/1.23, /*t_min=*/air.referenceTemperature(0.0)));
    return skus;
}

/// A scalar twin of fleet server @p i: same SKU coefficients, same
/// initial temperature, same operating point.
ScalarServer
scalarTwin(const fleet::FleetState &state,
           const std::vector<fleet::SkuParams> &skus, std::size_t i)
{
    static const auto server = power::ServerPowerModel::openComputeBlade();
    static const reliability::LifetimeModel lifetime;
    static const thermal::TwoPhaseImmersionCooling immersed(
        thermal::fc3284());
    static const thermal::AirCooling air;
    static const thermal::CoolingSystem *coolings[2] = {&immersed, &air};

    const fleet::SkuParams &p = skus[state.skuIndex[i]];
    return ScalarServer{
        server.socketModel(),
        thermal::ThermalNode(p.rth, p.thermalCap, p.coolantRef),
        reliability::WearTracker(lifetime, p.designLife),
        coolings[state.skuIndex[i]],
        p.level[state.freqLevel[i]].frequency,
        state.utilization[i],
        p.tMin,
    };
}

/// Build a fleet of @p servers cycling over @p sku_count SKUs with a
/// deterministic utilization spread and every 5th server overclocked.
fleet::FleetState
makeFleet(const std::vector<fleet::SkuParams> &skus, std::size_t servers,
          std::size_t sku_count)
{
    fleet::FleetState state;
    state.reserve(servers);
    for (std::size_t i = 0; i < servers; ++i) {
        const auto sku = static_cast<std::uint32_t>(i % sku_count);
        state.addServers(1, sku, skus[sku].coolantRef);
        state.utilization[i] =
            0.03 + 0.94 * static_cast<double>(i % 13) / 12.0;
        state.freqLevel[i] =
            i % 5 == 0 ? fleet::kOverclocked : fleet::kNominal;
    }
    return state;
}

/// The oracle proper: run @p minutes batched steps against per-server
/// scalar twins and demand bit equality on every physics column.
void
expectScalarBatchedIdentity(const std::vector<fleet::SkuParams> &skus,
                            std::size_t servers, std::size_t sku_count,
                            int minutes)
{
    fleet::FleetState state = makeFleet(skus, servers, sku_count);
    std::vector<ScalarServer> twins;
    twins.reserve(servers);
    for (std::size_t i = 0; i < servers; ++i)
        twins.push_back(scalarTwin(state, skus, i));

    for (int m = 0; m < minutes; ++m) {
        fleet::stepAll(state, skus, 60.0);
        for (std::size_t i = 0; i < servers; ++i) {
            ScalarServer &sv = twins[i];
            stepScalar(sv, 60.0);
            const fleet::SkuParams &p = skus[state.skuIndex[i]];
            const power::VfCurve &vf = sv.socket.curve();
            const Volts volt = vf.voltageFor(sv.frequency);
            const power::OperatingPoint op{sv.frequency, volt,
                                           sv.utilization};
            // Bit-exact (EXPECT_EQ, not EXPECT_DOUBLE_EQ): the contract
            // is identity, not closeness.
            EXPECT_EQ(state.dynamicPower[i], sv.socket.dynamicPower(op))
                << "server " << i << " minute " << m;
            EXPECT_EQ(state.tj[i], sv.node.temperature())
                << "server " << i << " minute " << m;
            EXPECT_EQ(state.wearConsumed[i], sv.tracker.consumed())
                << "server " << i << " minute " << m;
            EXPECT_EQ(state.serviceYears[i], sv.tracker.age())
                << "server " << i << " minute " << m;
            EXPECT_EQ(state.totalPower[i],
                      (state.dynamicPower[i] + state.leakagePower[i]) *
                              p.sockets +
                          p.constantPower)
                << "server " << i << " minute " << m;
        }
    }
}

// ---------------------------------------------------------------------
// Equivalence oracle.
// ---------------------------------------------------------------------

TEST(FleetEquivalence, UniformSkuBitExact)
{
    const auto skus = mixedSkus();
    expectScalarBatchedIdentity(skus, 48, /*sku_count=*/1, /*minutes=*/8);
}

TEST(FleetEquivalence, MixedSkuBitExact)
{
    const auto skus = mixedSkus();
    ASSERT_EQ(skus.size(), 2u);
    expectScalarBatchedIdentity(skus, 64, /*sku_count=*/2, /*minutes=*/8);
}

TEST(FleetEquivalence, SingleServerFleet)
{
    const auto skus = mixedSkus();
    expectScalarBatchedIdentity(skus, 1, /*sku_count=*/1, /*minutes=*/20);
}

TEST(FleetEquivalence, StepAllComposesFromKernels)
{
    const auto skus = mixedSkus();
    fleet::FleetState a = makeFleet(skus, 32, 2);
    fleet::FleetState b = makeFleet(skus, 32, 2);

    for (int m = 0; m < 5; ++m) {
        fleet::stepAll(a, skus, 60.0);
        fleet::stepPower(b, skus);
        fleet::stepThermal(b, skus, 60.0);
        fleet::stepWear(b, skus, fleet::secondsToYears(60.0));
    }
    EXPECT_EQ(a.dynamicPower, b.dynamicPower);
    EXPECT_EQ(a.leakagePower, b.leakagePower);
    EXPECT_EQ(a.totalPower, b.totalPower);
    EXPECT_EQ(a.tj, b.tj);
    EXPECT_EQ(a.wearConsumed, b.wearConsumed);
    EXPECT_EQ(a.serviceYears, b.serviceYears);
}

// ---------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------

TEST(FleetEdgeCases, ZeroUtilizationFleet)
{
    const auto skus = mixedSkus();
    fleet::FleetState state = makeFleet(skus, 24, 2);
    for (std::size_t i = 0; i < state.size(); ++i)
        state.utilization[i] = 0.0;

    for (int m = 0; m < 10; ++m)
        fleet::stepAll(state, skus, 60.0);

    for (std::size_t i = 0; i < state.size(); ++i) {
        const fleet::SkuParams &p = skus[state.skuIndex[i]];
        EXPECT_EQ(state.dynamicPower[i], 0.0);
        EXPECT_GT(state.leakagePower[i], 0.0);
        // With no dynamic power the junction relaxes toward the
        // leakage-only steady state, staying at or above the coolant.
        EXPECT_GE(state.tj[i], p.coolantRef);
        // Idle servers still wear: the supply stays up, so the duty
        // floor applies and wear stays strictly positive and finite.
        EXPECT_GT(state.wearConsumed[i], 0.0);
        EXPECT_TRUE(std::isfinite(state.wearConsumed[i]));
    }
}

TEST(FleetEdgeCases, WearAccumulationStaysFinite)
{
    // Years of minutes on a hot overclocked fleet: wear must grow
    // monotonically without ever producing NaN/inf.
    const auto skus = mixedSkus();
    fleet::FleetState state = makeFleet(skus, 8, 2);
    for (std::size_t i = 0; i < state.size(); ++i) {
        state.utilization[i] = 1.0;
        state.freqLevel[i] = fleet::kOverclocked;
    }

    double prev_mean = 0.0;
    for (int m = 0; m < 20000; ++m) {
        fleet::stepAll(state, skus, 60.0);
        if (m % 4000 == 0) {
            const double mean = state.meanWearConsumed();
            EXPECT_TRUE(std::isfinite(mean)) << "minute " << m;
            EXPECT_GT(mean, prev_mean) << "minute " << m;
            prev_mean = mean;
        }
    }
    for (std::size_t i = 0; i < state.size(); ++i) {
        EXPECT_TRUE(std::isfinite(state.wearConsumed[i]));
        EXPECT_TRUE(std::isfinite(state.tj[i]));
        EXPECT_TRUE(std::isfinite(state.meanWearCredit(skus)));
    }
}

TEST(FleetEdgeCases, AllCappedMinute)
{
    // Feed sized barely above the physics floor (idle leakage +
    // constant power): every rack must be capped every minute, and the
    // per-server loop must survive an entire horizon in that state.
    auto physics = cluster::PerServerPhysics::openComputeImmersed();
    const fleet::SkuParams &p = physics.skus[0];

    std::vector<cluster::RackConfig> racks(2);
    for (auto &r : racks) {
        r.servers = 8;
        r.overclockDemand = 0.5;
    }
    const double servers_total = 16.0;
    const Watts floor_per_server =
        p.leakRef * std::exp((p.coolantRef - p.leakRefTj) / p.leakTheta) *
            p.sockets +
        p.constantPower;
    const Watts feed = 1.05 * servers_total * floor_per_server;

    cluster::DatacenterPowerSim sim(racks, feed, /*oversubscription=*/1.2,
                                    /*oc_speedup=*/1.2);
    sim.enablePerServerFidelity(std::move(physics));

    util::Rng rng(11);
    const auto outcome =
        sim.run(cluster::OverclockPolicy::Always, rng, 1.0);
    EXPECT_DOUBLE_EQ(outcome.cappingMinutesShare, 1.0);
    EXPECT_EQ(outcome.fleet.servers, 16u);
    EXPECT_TRUE(std::isfinite(outcome.fleet.meanWearConsumed));
    EXPECT_GT(outcome.fleet.meanTj, 0.0);
    EXPECT_GT(outcome.energyMwh, 0.0);
}

// ---------------------------------------------------------------------
// Run-overload regression: the 3-arg run() must forward to the
// telemetry overload and produce an identical outcome.
// ---------------------------------------------------------------------

void
expectOutcomesIdentical(const cluster::DatacenterOutcome &plain,
                        const cluster::DatacenterOutcome &instrumented)
{
    EXPECT_EQ(plain.policy, instrumented.policy);
    EXPECT_EQ(plain.energyMwh, instrumented.energyMwh);
    EXPECT_EQ(plain.meanFeedUtilization,
              instrumented.meanFeedUtilization);
    EXPECT_EQ(plain.cappingMinutesShare,
              instrumented.cappingMinutesShare);
    EXPECT_EQ(plain.overclockShare, instrumented.overclockShare);
    EXPECT_EQ(plain.cappedOverclockShare,
              instrumented.cappedOverclockShare);
    EXPECT_EQ(plain.speedupDelivered, instrumented.speedupDelivered);
    EXPECT_EQ(plain.fleet.servers, instrumented.fleet.servers);
    EXPECT_EQ(plain.fleet.meanTj, instrumented.fleet.meanTj);
    EXPECT_EQ(plain.fleet.peakTj, instrumented.fleet.peakTj);
    EXPECT_EQ(plain.fleet.meanWearConsumed,
              instrumented.fleet.meanWearConsumed);
    EXPECT_EQ(plain.fleet.meanWearCredit,
              instrumented.fleet.meanWearCredit);
    EXPECT_EQ(plain.fleet.meanServerPower,
              instrumented.fleet.meanServerPower);
}

TEST(DatacenterRunOverloads, RackAggregateIdenticalWithTelemetry)
{
    std::vector<cluster::RackConfig> racks(3);
    racks[2].priority = 2;
    cluster::DatacenterPowerSim sim(racks, 40000.0, 1.3, 1.2);

    // Identical seeds: telemetry attachment must not perturb the run.
    util::Rng rng_plain(7);
    util::Rng rng_inst(7);
    const auto plain =
        sim.run(cluster::OverclockPolicy::PowerAware, rng_plain, 2.0);
    obs::TimeSeries telemetry;
    obs::MetricRegistry metrics;
    const auto instrumented =
        sim.run(cluster::OverclockPolicy::PowerAware, rng_inst, 2.0,
                &telemetry, &metrics);

    expectOutcomesIdentical(plain, instrumented);
    EXPECT_EQ(telemetry.rows(), static_cast<std::size_t>(2.0 * 24 * 60));
}

TEST(DatacenterRunOverloads, PerServerIdenticalWithTelemetry)
{
    std::vector<cluster::RackConfig> racks(2);
    for (auto &r : racks)
        r.servers = 12;
    cluster::DatacenterPowerSim sim(racks, 18000.0, 1.2, 1.2);
    sim.enablePerServerFidelity(
        cluster::PerServerPhysics::openComputeImmersed());

    util::Rng rng_plain(21);
    util::Rng rng_inst(21);
    const auto plain =
        sim.run(cluster::OverclockPolicy::PowerAware, rng_plain, 1.0);
    obs::TimeSeries telemetry;
    obs::MetricRegistry metrics;
    const auto instrumented =
        sim.run(cluster::OverclockPolicy::PowerAware, rng_inst, 1.0,
                &telemetry, &metrics);

    expectOutcomesIdentical(plain, instrumented);
    ASSERT_EQ(telemetry.columns().size(), 7u);
    EXPECT_EQ(telemetry.columns()[4], "mean_tj_c");
    EXPECT_EQ(telemetry.columns()[5], "max_tj_c");
    EXPECT_EQ(telemetry.columns()[6], "mean_wear");
}

// ---------------------------------------------------------------------
// Sharded determinism oracle: the intra-run parallelism contract of
// DatacenterPowerSim::setSimThreads and the sharded fleet kernels —
// threads == 1 is the serial loop, and ANY thread count (and any shard
// plan) reproduces it bit-for-bit. EXPECT_EQ throughout: the contract
// is identity, not closeness.
// ---------------------------------------------------------------------

void
expectColumnsIdentical(const fleet::FleetState &a,
                       const fleet::FleetState &b)
{
    EXPECT_EQ(a.dynamicPower, b.dynamicPower);
    EXPECT_EQ(a.leakagePower, b.leakagePower);
    EXPECT_EQ(a.totalPower, b.totalPower);
    EXPECT_EQ(a.tj, b.tj);
    EXPECT_EQ(a.wearConsumed, b.wearConsumed);
    EXPECT_EQ(a.serviceYears, b.serviceYears);
}

TEST(ShardedDeterminism, StepAllMatchesSerialAcrossPlansAndThreads)
{
    const auto skus = mixedSkus();
    const std::size_t n = 257; // Prime: every plan splits unevenly.
    fleet::FleetState serial = makeFleet(skus, n, 2);
    for (int m = 0; m < 6; ++m)
        fleet::stepAll(serial, skus, 60.0);

    for (std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
        for (std::size_t threads : {1u, 2u, 7u, 8u}) {
            fleet::FleetState state = makeFleet(skus, n, 2);
            const util::ShardPlan plan = util::ShardPlan::even(n, shards);
            util::ShardRunner runner(threads);
            for (int m = 0; m < 6; ++m)
                fleet::stepAll(state, skus, 60.0, plan, runner);
            expectColumnsIdentical(serial, state);
        }
    }
}

TEST(ShardedDeterminism, StepAllMatchesSerialOnAlignedPlan)
{
    const auto skus = mixedSkus();
    // Rack-aligned plan over uneven groups, the datacenter's geometry.
    const std::vector<std::size_t> group_begin = {0, 9, 18, 40, 47, 61};
    const std::size_t n = group_begin.back();
    fleet::FleetState serial = makeFleet(skus, n, 2);
    fleet::FleetState state = makeFleet(skus, n, 2);
    const util::ShardPlan plan = util::ShardPlan::alignedTo(group_begin, 3);
    util::ShardRunner runner(4);
    for (int m = 0; m < 6; ++m) {
        fleet::stepAll(serial, skus, 60.0);
        fleet::stepAll(state, skus, 60.0, plan, runner);
    }
    expectColumnsIdentical(serial, state);
}

void
expectSeriesIdentical(const obs::TimeSeries &a, const obs::TimeSeries &b)
{
    ASSERT_EQ(a.columns(), b.columns());
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        ASSERT_EQ(a.row(i), b.row(i)) << "row " << i;
}

struct ShardedRun
{
    cluster::DatacenterOutcome outcome;
    obs::TimeSeries telemetry;
    obs::TimeSeries aggSeries;
};

/// One PowerAware run at @p threads sim threads with telemetry and a
/// FleetAggregator attached (so the sharded observe path is exercised
/// alongside the sharded physics). 4800 servers in per-server mode so
/// the grain-derived plan has several shards.
ShardedRun
runShardedDatacenter(std::size_t threads, bool per_server, bool mixed_sku)
{
    const std::size_t rack_count = per_server ? 120 : 96;
    std::vector<cluster::RackConfig> racks(rack_count);
    for (std::size_t r = 0; r < racks.size(); ++r) {
        racks[r].servers = 40;
        racks[r].priority = r % 3 == 0 ? 2 : 1;
        racks[r].overclockDemand = 0.6;
    }
    // ~330 W per server: capping and the PowerAware backout both fire
    // even over the short early-diurnal horizon, so every sharded
    // branch runs.
    cluster::DatacenterPowerSim sim(
        racks, 330.0 * 40.0 * static_cast<double>(rack_count), 1.25, 1.2);
    if (per_server) {
        auto physics = cluster::PerServerPhysics::openComputeImmersed();
        if (mixed_sku) {
            physics.skus = mixedSkus();
            physics.rackSku.resize(rack_count);
            for (std::size_t r = 0; r < rack_count; ++r)
                physics.rackSku[r] = static_cast<std::uint32_t>(r % 2);
        }
        sim.enablePerServerFidelity(std::move(physics));
    }
    sim.setSimThreads(threads);

    obs::FleetAggregator::Config cfg;
    cfg.skuCount = mixed_sku ? 2 : 1;
    obs::FleetAggregator agg(cfg);
    sim.attachObservability(&agg, nullptr);

    ShardedRun run;
    util::Rng rng(31);
    run.outcome = sim.run(cluster::OverclockPolicy::PowerAware, rng, 0.1,
                          &run.telemetry, nullptr);
    run.aggSeries = agg.takeSeries();
    return run;
}

void
expectShardedRunsIdentical(bool per_server, bool mixed_sku)
{
    const ShardedRun serial =
        runShardedDatacenter(1, per_server, mixed_sku);
    EXPECT_GT(serial.outcome.cappingMinutesShare, 0.0);
    for (const std::size_t threads : {2u, 7u, 8u}) {
        const ShardedRun sharded =
            runShardedDatacenter(threads, per_server, mixed_sku);
        expectOutcomesIdentical(serial.outcome, sharded.outcome);
        expectSeriesIdentical(serial.telemetry, sharded.telemetry);
        expectSeriesIdentical(serial.aggSeries, sharded.aggSeries);
    }
}

TEST(ShardedDeterminism, DatacenterPerServerUniformSku)
{
    expectShardedRunsIdentical(/*per_server=*/true, /*mixed_sku=*/false);
}

TEST(ShardedDeterminism, DatacenterPerServerMixedSku)
{
    expectShardedRunsIdentical(/*per_server=*/true, /*mixed_sku=*/true);
}

TEST(ShardedDeterminism, DatacenterRackAggregate)
{
    expectShardedRunsIdentical(/*per_server=*/false, /*mixed_sku=*/false);
}

TEST(ShardedDeterminism, ConcurrentSnapshotDuringShardedRun)
{
    // The shard-race oracle scripts/tsan.sh holds under
    // IMSIM_SANITIZE=thread: a sharded per-server run while an outside
    // thread hammers the aggregator's mutex-published snapshot(). Any
    // unsynchronised column access between shard workers, the minute
    // loop, or the poller is a TSan report.
    std::vector<cluster::RackConfig> racks(120);
    for (auto &r : racks)
        r.servers = 40;
    cluster::DatacenterPowerSim sim(racks, 2.4e6, 1.25, 1.2);
    sim.enablePerServerFidelity(
        cluster::PerServerPhysics::openComputeImmersed());
    sim.setSimThreads(4);
    obs::FleetAggregator::Config cfg;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    sim.attachObservability(&agg, nullptr);

    std::atomic<bool> stop{false};
    std::size_t polled = 0;
    std::thread poller([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const obs::FleetSample sample = agg.snapshot();
            if (sample.units > 0) {
                EXPECT_TRUE(std::isfinite(sample.fleetPower));
                ++polled;
            }
        }
    });
    util::Rng rng(5);
    const auto outcome =
        sim.run(cluster::OverclockPolicy::Always, rng, 0.02);
    stop.store(true, std::memory_order_relaxed);
    poller.join();
    EXPECT_EQ(outcome.fleet.servers, 4800u);
    EXPECT_GT(agg.ticks(), 0u);
}

} // namespace
} // namespace imsim
