/**
 * @file
 * Unit tests for the TCO model against Table VI and the Sec. VI-C
 * oversubscription economics.
 */

#include <gtest/gtest.h>

#include "tco/tco.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using tco::Scenario;
using tco::TcoModel;

double
rowDelta(const tco::TcoResult &result, const std::string &category)
{
    for (const auto &row : result.rows)
        if (row.category == category)
            return row.deltaOfBaselineTotal;
    util::fatal("missing category: " + category);
}

TEST(Tco, BaselineIsZeroEverywhere)
{
    TcoModel model;
    const auto result = model.evaluate(Scenario::AirCooled);
    EXPECT_DOUBLE_EQ(result.costPerCoreDelta, 0.0);
    for (const auto &row : result.rows)
        EXPECT_DOUBLE_EQ(row.deltaOfBaselineTotal, 0.0);
}

TEST(Tco, NonOverclockableSavesAboutSevenPercent)
{
    // Table VI bottom line: -7 % cost per physical core.
    TcoModel model;
    const auto result = model.evaluate(Scenario::NonOverclockable2Pic);
    EXPECT_NEAR(result.costPerCoreDelta, -0.07, 0.015);
}

TEST(Tco, OverclockableSavesAboutFourPercent)
{
    // Table VI: -4 % for overclockable 2PIC.
    TcoModel model;
    const auto result = model.evaluate(Scenario::Overclockable2Pic);
    EXPECT_NEAR(result.costPerCoreDelta, -0.04, 0.015);
}

TEST(Tco, RowsSumToBottomLine)
{
    TcoModel model;
    for (auto scenario : {Scenario::NonOverclockable2Pic,
                          Scenario::Overclockable2Pic}) {
        const auto result = model.evaluate(scenario);
        double sum = 0.0;
        for (const auto &row : result.rows)
            sum += row.deltaOfBaselineTotal;
        EXPECT_NEAR(sum, result.costPerCoreDelta, 1e-12);
    }
}

TEST(Tco, TableViRowSigns)
{
    TcoModel model;
    const auto non_oc = model.evaluate(Scenario::NonOverclockable2Pic);
    EXPECT_LT(rowDelta(non_oc, "Servers"), 0.0);
    EXPECT_GT(rowDelta(non_oc, "Network"), 0.0);
    EXPECT_LT(rowDelta(non_oc, "DC construction"), 0.0);
    EXPECT_LT(rowDelta(non_oc, "Energy"), 0.0);
    EXPECT_LT(rowDelta(non_oc, "Operations"), 0.0);
    EXPECT_LT(rowDelta(non_oc, "Design, taxes, fees"), 0.0);
    EXPECT_GT(rowDelta(non_oc, "Immersion"), 0.0);
}

TEST(Tco, TableViRowMagnitudes)
{
    // Table VI reports roughly: servers -1 %, network +1 %,
    // construction -2 %, energy -2 %, operations -2 %, design -2 %,
    // immersion +1 %.
    TcoModel model;
    const auto non_oc = model.evaluate(Scenario::NonOverclockable2Pic);
    EXPECT_NEAR(rowDelta(non_oc, "Servers"), -0.01, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "Network"), 0.01, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "DC construction"), -0.02, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "Energy"), -0.02, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "Operations"), -0.02, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "Design, taxes, fees"), -0.02, 0.005);
    EXPECT_NEAR(rowDelta(non_oc, "Immersion"), 0.01, 0.005);
}

TEST(Tco, OverclockingNegatesServerAndEnergySavings)
{
    // Table VI: the overclockable column's Servers and Energy rows go
    // back to ~0 (power-delivery upgrades; +30 % server energy).
    TcoModel model;
    const auto oc = model.evaluate(Scenario::Overclockable2Pic);
    EXPECT_NEAR(rowDelta(oc, "Servers"), 0.0, 0.005);
    EXPECT_NEAR(rowDelta(oc, "Energy"), 0.0, 0.02);
}

TEST(Tco, PueReclaimGrowsTheFleet)
{
    TcoModel model;
    const auto result = model.evaluate(Scenario::NonOverclockable2Pic);
    EXPECT_NEAR(result.coreRatio, 1.20 / 1.03, 1e-9);
}

TEST(Tco, OversubscriptionReachesThirteenPercent)
{
    // Sec. VI-C: 10 % oversubscription with overclocking -> -13 % cost
    // per virtual core versus air.
    TcoModel model;
    const double rel = model.costPerVcoreRelative(
        Scenario::Overclockable2Pic, 0.10, 1.0);
    EXPECT_NEAR(rel, 0.87, 0.015);
}

TEST(Tco, NonOverclockableOversubscriptionIsLessEffective)
{
    // Sec. VI-C: non-overclockable 2PIC gains ~10 % because it cannot
    // compensate the interference (partial effectiveness).
    TcoModel model;
    const double rel = model.costPerVcoreRelative(
        Scenario::NonOverclockable2Pic, 0.10, 0.35);
    EXPECT_NEAR(rel, 0.90, 0.015);
}

TEST(Tco, NoOversubscriptionEqualsPerCoreCost)
{
    TcoModel model;
    const auto result = model.evaluate(Scenario::Overclockable2Pic);
    EXPECT_NEAR(model.costPerVcoreRelative(Scenario::Overclockable2Pic,
                                           0.0),
                1.0 + result.costPerCoreDelta, 1e-12);
}

TEST(Tco, InvalidInputsAreFatal)
{
    tco::TcoInputs inputs;
    inputs.serverFraction = 0.9; // Fractions no longer sum to 1.
    EXPECT_THROW(TcoModel{inputs}, FatalError);

    TcoModel model;
    EXPECT_THROW(
        model.costPerVcoreRelative(Scenario::AirCooled, -0.1), FatalError);
    EXPECT_THROW(
        model.costPerVcoreRelative(Scenario::AirCooled, 0.1, 2.0),
        FatalError);
}

TEST(Tco, ScenarioNames)
{
    EXPECT_EQ(tco::scenarioName(Scenario::AirCooled), "Air-cooled");
    EXPECT_EQ(tco::scenarioName(Scenario::Overclockable2Pic),
              "Overclockable 2PIC");
}

} // namespace
} // namespace imsim
