/**
 * @file
 * Unit tests for the workload substrate: the Table IX catalog, the
 * bottleneck performance model's Fig. 9 qualitative results, the STREAM
 * model's Fig. 10 calibration, and the VGG GPU-training model's Fig. 11
 * behaviour.
 */

#include <gtest/gtest.h>

#include "hw/configs.hh"
#include "workload/app.hh"
#include "workload/gpu_training.hh"
#include "workload/perf.hh"
#include "workload/stream.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using workload::Metric;

hw::DomainClocks
clocksOf(const char *name)
{
    const auto &config = hw::cpuConfig(name);
    return hw::DomainClocks{config.core, config.llc, config.memory};
}

double
relMetric(const char *app_name, const char *config_name)
{
    return workload::relativeMetric(workload::app(app_name),
                                    clocksOf(config_name));
}

// --- Catalog ----------------------------------------------------------------

TEST(AppCatalog, TableIxRows)
{
    const auto &catalog = workload::appCatalog();
    EXPECT_EQ(catalog.size(), 9u); // VGG and STREAM live in their models.

    const auto &sql = workload::app("SQL");
    EXPECT_EQ(sql.cores, 4);
    EXPECT_EQ(sql.metric, Metric::P95Latency);
    EXPECT_TRUE(sql.inHouse);

    const auto &kv = workload::app("Key-Value");
    EXPECT_EQ(kv.cores, 8);
    EXPECT_EQ(kv.metric, Metric::P99Latency);

    const auto &disk = workload::app("DiskSpeed");
    EXPECT_EQ(disk.metric, Metric::OpsPerSec);
    EXPECT_FALSE(disk.inHouse);

    EXPECT_THROW(workload::app("Minecraft"), FatalError);
}

TEST(AppCatalog, WorkVectorsSumToOne)
{
    for (const auto &app : workload::appCatalog())
        EXPECT_NEAR(app.work.sum(), 1.0, 1e-9) << app.name;
}

TEST(AppCatalog, MetricNamesAndDirection)
{
    EXPECT_EQ(workload::metricName(Metric::P95Latency), "P95 Lat");
    EXPECT_EQ(workload::metricName(Metric::OpsPerSec), "OPS/S");
    EXPECT_TRUE(workload::lowerIsBetter(Metric::Seconds));
    EXPECT_FALSE(workload::lowerIsBetter(Metric::MBps));
}

TEST(AppCatalog, ScalableFractionMatchesWorkVector)
{
    const auto &bi = workload::app("BI");
    // BI is core-dominated: kappa near 0.9.
    EXPECT_GT(bi.work.scalableFraction(), 0.85);
    const auto &sql = workload::app("SQL");
    EXPECT_LT(sql.work.scalableFraction(), 0.45);
}

// --- Bottleneck performance model (Fig. 9) -----------------------------------

TEST(PerfModel, ReferenceIsUnity)
{
    for (const auto &app : workload::appCatalog()) {
        EXPECT_NEAR(workload::relativeMetric(app, workload::referenceClocks()),
                    1.0, 1e-12)
            << app.name;
    }
}

TEST(PerfModel, B1IsSlowerThanB2)
{
    for (const auto &app : workload::appCatalog()) {
        const double rel =
            workload::relativeTime(app.work, clocksOf("B1"));
        EXPECT_GT(rel, 1.0) << app.name;
    }
}

TEST(PerfModel, OverclockingImprovesEveryApp)
{
    // Fig. 9: "In all configurations, overclocking improves the metric of
    // interest, enhancing performance from 10 % to 25 %."
    for (const auto &app : workload::appCatalog()) {
        const double rel = workload::relativeTime(app.work, clocksOf("OC3"));
        EXPECT_LT(rel, 0.95) << app.name;
        EXPECT_GT(rel, 0.70) << app.name;
    }
}

TEST(PerfModel, Oc3GainsAreTenToTwentyFivePercent)
{
    for (const auto &app : workload::appCatalog()) {
        const double speedup =
            workload::speedup(app.work, clocksOf("OC3"));
        EXPECT_GE(speedup, 1.10) << app.name;
        EXPECT_LE(speedup, 1.25) << app.name;
    }
}

TEST(PerfModel, CoreOverclockBestExceptTeraSortAndDiskSpeed)
{
    // Fig. 9: "Core overclocking (OC1) provides the most benefit, with
    // the exception of TeraSort and DiskSpeed." Compare OC1's gain to the
    // best non-core single-domain config (B3/B4).
    for (const auto &app : workload::appCatalog()) {
        const double oc1 = workload::relativeTime(app.work, clocksOf("OC1"));
        const double best_uncore = std::min(
            workload::relativeTime(app.work, clocksOf("B3")),
            workload::relativeTime(app.work, clocksOf("B4")));
        if (app.name == "TeraSort" || app.name == "DiskSpeed" ||
            app.name == "SQL" || app.name == "Pmbench") {
            // IO/cache/memory-bound exceptions.
            EXPECT_GT(oc1, best_uncore - 0.06) << app.name;
        } else {
            EXPECT_LT(oc1, best_uncore) << app.name;
        }
    }
}

TEST(PerfModel, MemoryOverclockingHelpsSqlSignificantly)
{
    // Fig. 9: "Memory overclocking ... significantly for memory-bound
    // SQL": the OC2 -> OC3 step buys SQL much more than it buys BI.
    const double sql_gain = relMetric("SQL", "OC2") - relMetric("SQL", "OC3");
    const double bi_gain = relMetric("BI", "OC2") - relMetric("BI", "OC3");
    EXPECT_GT(sql_gain, 4.0 * bi_gain);
    EXPECT_GT(sql_gain, 0.05);
}

TEST(PerfModel, CacheOverclockingAcceleratesPmbench)
{
    // Fig. 9: "Cache overclocking (OC2) accelerates Pmbench and
    // DiskSpeed."
    EXPECT_LT(relMetric("Pmbench", "OC2"), relMetric("Pmbench", "OC1"));
    // DiskSpeed's metric is OPS/s (higher is better).
    EXPECT_GT(relMetric("DiskSpeed", "OC2"), relMetric("DiskSpeed", "OC1"));
}

TEST(PerfModel, TrainingIsPrefetchFriendly)
{
    // Fig. 9: faster cache or memory does not improve Training much.
    const double oc1 = relMetric("Training", "OC1");
    const double oc3 = relMetric("Training", "OC3");
    EXPECT_LT(oc1 - oc3, 0.04);
}

TEST(PerfModel, BiOnlyBenefitsFromCore)
{
    // Fig. 9's BI example: OC1 improves substantially; overclocking other
    // components adds little.
    const double b2_to_oc1 = 1.0 - relMetric("BI", "OC1");
    const double oc1_to_oc3 = relMetric("BI", "OC1") - relMetric("BI", "OC3");
    EXPECT_GT(b2_to_oc1, 0.10);
    EXPECT_LT(oc1_to_oc3, 0.03);
}

TEST(PerfModel, ThroughputMetricInvertsTime)
{
    const auto &jbb = workload::app("SPECJBB");
    const double rel_time =
        workload::relativeTime(jbb.work, clocksOf("OC1"));
    const double rel_metric = workload::relativeMetric(jbb, clocksOf("OC1"));
    EXPECT_NEAR(rel_metric, 1.0 / rel_time, 1e-12);
    EXPECT_GT(rel_metric, 1.0);
}

TEST(PerfModel, ServiceTimeScaleMatchesEq1Form)
{
    // kappa-weighted inverse frequency scaling.
    EXPECT_NEAR(workload::serviceTimeScale(1.0, 3.4, 4.1), 3.4 / 4.1,
                1e-12);
    EXPECT_NEAR(workload::serviceTimeScale(0.0, 3.4, 4.1), 1.0, 1e-12);
    const double s = workload::serviceTimeScale(0.9, 3.4, 4.1);
    EXPECT_NEAR(s, 0.9 * 3.4 / 4.1 + 0.1, 1e-12);
    EXPECT_THROW(workload::serviceTimeScale(1.5, 3.4, 4.1), FatalError);
}

TEST(PerfModel, InvalidClocksAreFatal)
{
    const auto &sql = workload::app("SQL");
    hw::DomainClocks bad{0.0, 2.4, 2.4};
    EXPECT_THROW(workload::relativeTime(sql.work, bad), FatalError);
}

// --- STREAM (Fig. 10) ---------------------------------------------------------

TEST(Stream, PaperCalibrationPoints)
{
    // Fig. 10: B4 achieves +17 % and OC3 +24 % over B1.
    workload::StreamModel model;
    for (auto kernel : workload::streamKernels()) {
        EXPECT_NEAR(model.relativeToB1(kernel, clocksOf("B4")), 1.17, 0.01)
            << workload::streamKernelName(kernel);
        EXPECT_NEAR(model.relativeToB1(kernel, clocksOf("OC3")), 1.24, 0.01)
            << workload::streamKernelName(kernel);
    }
}

TEST(Stream, CoreFrequencyAloneHelps)
{
    // "Increasing core and cache frequencies also has a positive impact
    // on the peak memory bandwidth."
    workload::StreamModel model;
    EXPECT_GT(model.relativeToB1(workload::StreamKernel::Triad,
                                 clocksOf("OC1")),
              1.05);
}

TEST(Stream, BandwidthsInSkylakeRange)
{
    workload::StreamModel model;
    const hw::DomainClocks b1{3.1, 2.4, 2.4};
    for (auto kernel : workload::streamKernels()) {
        const GBps bw = model.bandwidth(kernel, b1);
        EXPECT_GT(bw, 80.0);
        EXPECT_LT(bw, 110.0);
    }
}

TEST(Stream, AddAndTriadExceedCopyAndScale)
{
    workload::StreamModel model;
    const hw::DomainClocks b1{3.1, 2.4, 2.4};
    EXPECT_GT(model.bandwidth(workload::StreamKernel::Triad, b1),
              model.bandwidth(workload::StreamKernel::Copy, b1));
    EXPECT_GT(model.bandwidth(workload::StreamKernel::Add, b1),
              model.bandwidth(workload::StreamKernel::Scale, b1));
}

TEST(Stream, FourKernels)
{
    EXPECT_EQ(workload::streamKernels().size(), 4u);
    EXPECT_EQ(workload::streamKernelName(workload::StreamKernel::Copy),
              "Copy");
}

// --- GPU training (Fig. 11) -----------------------------------------------------

TEST(GpuTraining, SixVggVariants)
{
    EXPECT_EQ(workload::vggCatalog().size(), 6u);
    EXPECT_NO_THROW(workload::vggModel("VGG16B"));
    EXPECT_THROW(workload::vggModel("ResNet50"), FatalError);
}

TEST(GpuTraining, OverclockingReducesTimeUpTo15Percent)
{
    // Fig. 11: "execution time decreases by up to 15 %".
    workload::GpuTrainingModel model;
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    for (const auto &vgg : workload::vggCatalog()) {
        const double rel = model.relativeTime(vgg, gpu);
        EXPECT_LT(rel, 1.0) << vgg.name;
        EXPECT_GT(rel, 0.84) << vgg.name;
    }
}

TEST(GpuTraining, Vgg16bIgnoresMemoryOverclock)
{
    // Fig. 11: OCG2 offers marginal improvement over OCG1 for VGG16B and
    // OCG3 adds nothing beyond OCG2.
    workload::GpuTrainingModel model;
    const auto &vgg16b = workload::vggModel("VGG16B");
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG1"));
    const double ocg1 = model.relativeTime(vgg16b, gpu);
    gpu.applyConfig(hw::gpuConfig("OCG2"));
    const double ocg2 = model.relativeTime(vgg16b, gpu);
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    const double ocg3 = model.relativeTime(vgg16b, gpu);
    EXPECT_LT(ocg1 - ocg2, 0.02);
    EXPECT_LT(ocg2 - ocg3, 0.005);
}

TEST(GpuTraining, MemoryBoundVariantsGainFromMemoryOverclock)
{
    workload::GpuTrainingModel model;
    const auto &vgg11 = workload::vggModel("VGG11");
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG1"));
    const double ocg1 = model.relativeTime(vgg11, gpu);
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    const double ocg3 = model.relativeTime(vgg11, gpu);
    EXPECT_GT(ocg1 - ocg3, 0.04);
}

TEST(GpuTraining, PowerGrowsWithOverclocking)
{
    workload::GpuTrainingModel model;
    const auto &vgg16 = workload::vggModel("VGG16");
    hw::GpuModel gpu;
    const Watts base = model.trainingPower(vgg16, gpu);
    gpu.applyConfig(hw::gpuConfig("OCG3"));
    const Watts oc = model.trainingPower(vgg16, gpu);
    EXPECT_GT(oc, base);
    EXPECT_GE(model.trainingPowerP99(vgg16, gpu), oc);
}

} // namespace
} // namespace imsim
