/**
 * @file
 * Edge-case and failure-injection tests across modules: degenerate
 * inputs, mid-run faults, boundary values, the CLI parser, the custom
 * experiment API, and the umbrella header's compilability.
 */

#include <gtest/gtest.h>

#include "imsim.hh"

namespace imsim {
namespace {

// --- CLI parser -----------------------------------------------------------------

TEST(Cli, ParsesFlagsValuesAndPositionals)
{
    const char *argv[] = {"prog", "--csv", "--seed", "42",
                          "--rate=3.5", "input.txt"};
    util::Cli cli(6, argv);
    EXPECT_EQ(cli.program(), "prog");
    EXPECT_TRUE(cli.has("--csv"));
    EXPECT_FALSE(cli.has("--json"));
    EXPECT_EQ(cli.getInt("--seed", 0), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("--rate", 0.0), 3.5);
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, FallbacksWhenAbsent)
{
    const char *argv[] = {"prog"};
    util::Cli cli(1, argv);
    EXPECT_EQ(cli.getInt("--seed", 7), 7);
    EXPECT_DOUBLE_EQ(cli.getDouble("--rate", 1.5), 1.5);
    EXPECT_EQ(cli.get("--name", "default"), "default");
}

TEST(Cli, NonNumericValueIsFatal)
{
    const char *argv[] = {"prog", "--seed", "abc"};
    util::Cli cli(3, argv);
    EXPECT_THROW(cli.getInt("--seed", 0), FatalError);
    EXPECT_THROW(cli.getDouble("--seed", 0.0), FatalError);
}

TEST(Cli, BooleanFlagBeforeAnotherFlag)
{
    const char *argv[] = {"prog", "--csv", "--seed=3"};
    util::Cli cli(3, argv);
    EXPECT_TRUE(cli.has("--csv"));
    EXPECT_EQ(cli.get("--csv"), "");
    EXPECT_EQ(cli.getInt("--seed", 0), 3);
}

// --- Custom auto-scale experiment (down-ramp) -------------------------------------

TEST(CustomExperiment, DownRampScalesInAndRelaxesFrequency)
{
    // Decreasing staircase: the fleet sheds VMs and OC-A relaxes to the
    // base clock.
    autoscale::ExperimentParams params;
    params.stepDuration = 240.0;
    const std::vector<double> levels{3000.0, 2000.0, 1000.0, 400.0,
                                     200.0};
    const auto outcome = autoscale::runCustomExperiment(
        autoscale::Policy::OcA, levels, 5, params);
    ASSERT_FALSE(outcome.trace.empty());
    const auto &last = outcome.trace.back();
    EXPECT_LT(last.vms, 5u);
    EXPECT_NEAR(last.frequency, 3.4, 1e-9);
    EXPECT_GT(outcome.requests, 100000u);
}

TEST(CustomExperiment, SpikeAbsorbedByOcA)
{
    // A 2-minute spike inside a calm run: OC-A rides it at higher
    // frequency without creating a VM; the baseline scales out.
    autoscale::ExperimentParams params;
    params.stepDuration = 120.0;
    const std::vector<double> levels{600.0, 1500.0, 600.0, 600.0};
    const auto oca = autoscale::runCustomExperiment(
        autoscale::Policy::OcA, levels, 1, params);
    const auto base = autoscale::runCustomExperiment(
        autoscale::Policy::Baseline, levels, 1, params);
    EXPECT_LE(oca.maxVms, base.maxVms);
    EXPECT_LE(oca.p95Latency, base.p95Latency * 1.02);
}

TEST(CustomExperiment, InvalidInputsAreFatal)
{
    EXPECT_THROW(autoscale::runCustomExperiment(
                     autoscale::Policy::Baseline, {}, 1),
                 FatalError);
    EXPECT_THROW(autoscale::runCustomExperiment(
                     autoscale::Policy::Baseline, {100.0}, 0),
                 FatalError);
}

// --- Failure injection ---------------------------------------------------------------

TEST(FailureInjection, EventExceptionPropagatesAndKernelSurvives)
{
    sim::Simulation sim;
    bool later_fired = false;
    sim.at(1.0, [] { util::fatal("injected fault"); });
    sim.at(2.0, [&] { later_fired = true; });
    EXPECT_THROW(sim.run(), FatalError);
    // The kernel is still usable after the exception.
    EXPECT_NO_THROW(sim.run());
    EXPECT_TRUE(later_fired);
}

TEST(FailureInjection, TankOverloadDetectedNotSilent)
{
    auto tank = thermal::makeSmallTank1();
    tank.setHeatLoad(0, 2900.0);
    tank.setHeatLoad(1, 2900.0);
    EXPECT_FALSE(tank.condenserKeepsUp());
    EXPECT_LT(tank.headroom(), 0.0);
}

TEST(FailureInjection, WatchdogStormForcesControllerBackoff)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("OC1"));
    thermal::TwoPhaseImmersionCooling cooling(thermal::hfe7000());
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog(3600.0, 10.0);
    power::RaplCapper budget(500.0);
    core::OverclockController controller(cpu, cooling, tracker, watchdog,
                                         budget);

    // Healthy at first...
    EXPECT_TRUE(controller.request(4.1, 1.0, 0.5, 0.0).approved);
    // ...then an error storm (the stability model at negative margin).
    reliability::StabilityModel part = reliability::StabilityModel::tank2Part();
    util::Rng rng(3);
    std::int64_t cumulative = 0;
    for (int minute = 0; minute <= 30; ++minute) {
        cumulative += part.sampleErrors(rng, 1.0 / 60.0, -30.0);
        watchdog.record(minute * 60.0, cumulative);
    }
    EXPECT_FALSE(controller.request(4.1, 1.0, 0.5, 1800.0).approved);
}

TEST(FailureInjection, QueueDrainsAfterServerFlap)
{
    // Remove and re-add capacity mid-overload; the system recovers.
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(5), params);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(2500.0);
    sim.runUntil(30.0);
    cluster.removeServer(); // Flap: drop to one server under overload.
    sim.runUntil(60.0);
    EXPECT_GT(cluster.queueDepth(), 0u);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(300.0);
    sim.runUntil(200.0);
    EXPECT_EQ(cluster.queueDepth(), 0u);
}

TEST(FailureInjection, BudgetBrownoutRefusedLoudly)
{
    power::PowerBudget budget(1000.0);
    std::vector<power::PowerConsumer> consumers{
        {"a", 900.0, 700.0, 1}, {"b", 900.0, 700.0, 1}};
    EXPECT_THROW(budget.allocate(consumers), FatalError);
}

// --- Boundary values --------------------------------------------------------------

TEST(Boundary, PercentileWithDuplicateSamples)
{
    util::PercentileEstimator est;
    for (int i = 0; i < 100; ++i)
        est.add(5.0);
    EXPECT_DOUBLE_EQ(est.p50(), 5.0);
    EXPECT_DOUBLE_EQ(est.p99(), 5.0);
}

TEST(Boundary, TurboGovernorSingleCorePart)
{
    // A 1-core governor must not divide by zero in the droop math.
    hw::TurboGovernor governor(1, 1.0, 2.0, 3.0, 3.0, 3.5, 50.0);
    EXPECT_DOUBLE_EQ(governor.turboCeiling(1), 3.0);
    EXPECT_THROW(governor.turboCeiling(2), FatalError);
}

TEST(Boundary, ZeroActivityPowerIsLeakageOnly)
{
    auto cpu = hw::CpuModel::xeonW3175x();
    thermal::TwoPhaseImmersionCooling cooling(thermal::hfe7000());
    const auto breakdown = cpu.power(cooling, 0.0);
    EXPECT_DOUBLE_EQ(breakdown.core, 0.0);
    EXPECT_GT(breakdown.leakage, 0.0);
    // Uncore/memory keep their idle floors.
    EXPECT_GT(breakdown.uncore, 0.0);
}

TEST(Boundary, LifetimeAtExactAnchorVoltages)
{
    // The V-f curve floor and the anchor voltages hit no singularities.
    reliability::LifetimeModel model;
    reliability::StressCondition cond{0.70, 40.0, 35.0, 0.6, 1.0};
    EXPECT_GT(model.lifetime(cond), 10.0);
    cond.voltage = 1.10;
    cond.tjMax = 105.0;
    cond.freqRatio = 1.4;
    EXPECT_LT(model.lifetime(cond), 1.0);
}

TEST(Boundary, EmptyTraceIsFatalInOpportunityAnalysis)
{
    const auto governor = hw::TurboGovernor::skylake8180();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air;
    EXPECT_THROW(workload::analyzeOpportunity(governor, socket, air, {}),
                 FatalError);
}

TEST(Boundary, StreamAtExtremeClocksStaysFinite)
{
    workload::StreamModel model;
    const GBps tiny =
        model.bandwidth(workload::StreamKernel::Triad, {0.5, 0.5, 0.5});
    const GBps huge =
        model.bandwidth(workload::StreamKernel::Triad, {10.0, 10.0, 10.0});
    EXPECT_GT(tiny, 0.0);
    EXPECT_GT(huge, tiny);
    EXPECT_LT(huge, 500.0); // The harmonic model saturates sanely.
}

TEST(Boundary, MigrationOfTinyVmIsFast)
{
    cluster::MigrationParams params;
    params.memoryGb = 0.5;
    const auto est = cluster::MigrationModel(params).estimate();
    EXPECT_LT(est.totalTime, 2.0);
    EXPECT_GE(est.rounds, 1);
}

} // namespace
} // namespace imsim
