/**
 * @file
 * Unit tests for the weather-driven heat-rejection model and the VM
 * provisioning-latency model.
 */

#include <gtest/gtest.h>

#include "thermal/fluid.hh"
#include "thermal/network.hh"
#include "thermal/weather.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "vm/provisioning.hh"

namespace imsim {
namespace {

constexpr double kDay = 86400.0;

// --- Weather model ---------------------------------------------------------------

TEST(Weather, SeasonalAndDiurnalCycles)
{
    thermal::WeatherModel weather;
    // Mid-summer afternoon beats mid-winter night by roughly the sum of
    // both amplitudes (2 * (10 + 5)).
    const Celsius summer_noon = weather.ambient(200.0 * kDay + 15.0 * 3600.0);
    const Celsius winter_night = weather.ambient(20.0 * kDay + 3.0 * 3600.0);
    EXPECT_GT(summer_noon - winter_night, 20.0);
    EXPECT_LE(summer_noon, weather.annualPeakAmbient() + 1e-9);
}

TEST(Weather, AnnualMeanRecovered)
{
    thermal::WeatherModel weather;
    util::OnlineStats stats;
    for (int day = 0; day < 365; ++day)
        for (int hour = 0; hour < 24; ++hour)
            stats.add(weather.ambient(day * kDay + hour * 3600.0));
    EXPECT_NEAR(stats.mean(), 15.0, 0.5);
}

TEST(Weather, CoolantTracksAmbientPlusApproach)
{
    thermal::WeatherModel weather({}, 8.0);
    const Seconds t = 100.0 * kDay;
    EXPECT_DOUBLE_EQ(weather.coolantSupply(t), weather.ambient(t) + 8.0);
}

TEST(Weather, SubcoolingMarginShrinksInSummer)
{
    // HFE-7000 boils at 34 C: a hot site's summer afternoons erode the
    // condenser margin — the low-boiling-point fluid's operational risk.
    thermal::SiteClimate hot;
    hot.annualMean = 24.0;
    hot.seasonalAmplitude = 10.0;
    hot.diurnalAmplitude = 5.0;
    thermal::WeatherModel weather(hot, 8.0);
    const Celsius winter = weather.subcoolingMargin(
        thermal::hfe7000(), 20.0 * kDay);
    const Celsius summer = weather.subcoolingMargin(
        thermal::hfe7000(), 200.0 * kDay + 15.0 * 3600.0);
    EXPECT_GT(winter, summer);
    EXPECT_LT(summer, 0.0); // Heat wave: condenser cannot condense.
    // FC-3284's 50 C boiling point retains margin at the same site —
    // why the production large tank uses it.
    EXPECT_GT(weather.subcoolingMargin(thermal::fc3284(),
                                       200.0 * kDay + 15.0 * 3600.0),
              0.0);
}

TEST(Weather, JunctionFollowsSeasonThroughTheNetwork)
{
    // Couple the weather to the immersed-CPU network's coolant node:
    // the die runs measurably hotter in summer.
    // Fixed (sub-boiling) tank load so the fluid is free to follow the
    // coolant rather than being pinned at saturation.
    thermal::WeatherModel weather;
    auto winter_rig = thermal::makeImmersedCpuNetwork(
        thermal::fc3284(), {}, 100.0, 0.004,
        weather.coolantSupply(20.0 * kDay), 2000.0);
    auto summer_rig = thermal::makeImmersedCpuNetwork(
        thermal::fc3284(), {}, 100.0, 0.004,
        weather.coolantSupply(200.0 * kDay + 15.0 * 3600.0), 2000.0);
    winter_rig.network.inject(winter_rig.die, 204.0);
    summer_rig.network.inject(summer_rig.die, 204.0);
    winter_rig.network.settle();
    summer_rig.network.settle();
    EXPECT_GT(summer_rig.network.temperature(summer_rig.die),
              winter_rig.network.temperature(winter_rig.die));
}

TEST(Weather, NoiseIsZeroMean)
{
    thermal::WeatherModel weather;
    util::Rng rng(5);
    util::OnlineStats noise;
    const Seconds t = 50.0 * kDay;
    for (int i = 0; i < 20000; ++i)
        noise.add(weather.ambient(t, rng) - weather.ambient(t));
    EXPECT_NEAR(noise.mean(), 0.0, 0.05);
    EXPECT_NEAR(noise.stddev(), 1.5, 0.1);
}

TEST(Weather, InvalidParametersAreFatal)
{
    EXPECT_THROW(thermal::WeatherModel({}, 0.0), FatalError);
    thermal::SiteClimate bad;
    bad.seasonalAmplitude = -1.0;
    EXPECT_THROW(thermal::WeatherModel{bad}, FatalError);
    thermal::WeatherModel weather;
    EXPECT_THROW(weather.ambient(-1.0), FatalError);
}

// --- Provisioning model -------------------------------------------------------------

TEST(Provisioning, DefaultMeansAboutSixtySeconds)
{
    // Matches the paper's emulated 60 s scale-out.
    vm::ProvisioningModel model;
    EXPECT_NEAR(model.meanTotal(), 60.0, 2.0);
}

TEST(Provisioning, SampleRespectsFloorsAndSumsPhases)
{
    vm::ProvisioningModel model;
    util::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto sample = model.sample(rng);
        EXPECT_GE(sample.placement, 0.5);
        EXPECT_GE(sample.imageFetch, 4.0);
        EXPECT_GE(sample.guestBoot, 10.0);
        EXPECT_GE(sample.appWarmup, 2.0);
        EXPECT_NEAR(sample.total,
                    sample.placement + sample.imageFetch +
                        sample.guestBoot + sample.appWarmup,
                    1e-9);
    }
}

TEST(Provisioning, EmpiricalMeanMatchesAnalytic)
{
    vm::ProvisioningModel model;
    util::Rng rng(2);
    util::OnlineStats stats;
    for (int i = 0; i < 30000; ++i)
        stats.add(model.sample(rng).total);
    EXPECT_NEAR(stats.mean(), model.meanTotal(), 2.0);
}

TEST(Provisioning, TailIsMuchSlowerThanMedian)
{
    // The long provisioning tail is exactly what the overclock bridge
    // covers: P99 creation is far slower than the median.
    vm::ProvisioningModel model;
    util::Rng rng(3);
    const Seconds p50 = model.percentileTotal(rng, 50.0);
    const Seconds p99 = model.percentileTotal(rng, 99.0);
    EXPECT_GT(p99, 1.5 * p50);
}

TEST(Provisioning, CustomPhasesAndValidation)
{
    vm::ProvisioningModel fast({1.0, 0.3, 0.2}, {2.0, 0.3, 0.5},
                               {3.0, 0.3, 1.0}, {1.0, 0.3, 0.2});
    EXPECT_NEAR(fast.meanTotal(), 7.0, 1e-9);
    EXPECT_THROW(vm::ProvisioningModel({0.0, 0.3, 0.2}, {2.0, 0.3, 0.5},
                                       {3.0, 0.3, 1.0}, {1.0, 0.3, 0.2}),
                 FatalError);
    util::Rng rng(4);
    EXPECT_THROW(fast.percentileTotal(rng, 50.0, 0), FatalError);
}

} // namespace
} // namespace imsim
