/**
 * @file
 * Cross-module consistency tests: independent models in the library must
 * agree wherever they describe the same physical quantity — the V-f
 * curve and the Table V operating points, the socket and CPU package
 * power models, the config catalog and the governor's boundaries, the
 * queueing cluster and the bottleneck performance model.
 */

#include <gtest/gtest.h>

#include "imsim.hh"

namespace imsim {
namespace {

TEST(Consistency, TableVVoltagesLieOnTheVfCurve)
{
    // Table V's overclocked rows use 0.98 V at +23% frequency — exactly
    // the W-3175X V-f curve's prediction.
    const power::VfCurve curve = power::VfCurve::xeonW3175x();
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto &cond = scenarios[i].condition;
        const GHz f = curve.nominalFrequency() * cond.freqRatio;
        EXPECT_NEAR(curve.voltageFor(f), cond.voltage, 1e-6)
            << scenarios[i].cooling;
    }
}

TEST(Consistency, CatalogConfigsFitTheGovernorBoundary)
{
    // Every Table VII configuration must be applicable to the unlocked
    // part: within the non-operating boundary, positive clocks.
    const auto governor = hw::TurboGovernor::xeonW3175x();
    for (const auto &config : hw::cpuConfigCatalog()) {
        EXPECT_LE(config.core, governor.overclockBoundary());
        EXPECT_GT(config.llc, 0.0);
        EXPECT_GT(config.memory, 0.0);
        auto cpu = hw::CpuModel::xeonW3175x();
        EXPECT_NO_THROW(cpu.applyConfig(config)) << config.name;
    }
}

TEST(Consistency, Oc1IsTheGreenBandCeilingInHfe)
{
    // The lifetime model's green band and the paper's chosen OC1 clock
    // coincide: the controller grants exactly 4.1 GHz in HFE-7000.
    auto cpu = hw::CpuModel::xeonW3175x();
    cpu.applyConfig(hw::cpuConfig("B2"));
    thermal::TwoPhaseImmersionCooling hfe(thermal::hfe7000());
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog;
    power::RaplCapper budget(500.0);
    core::OverclockController controller(cpu, hfe, tracker, watchdog,
                                         budget);
    EXPECT_NEAR(controller.greenBandCeiling(), hw::cpuConfig("OC1").core,
                0.15);
}

TEST(Consistency, SocketAndCpuPackageModelsAgreeAtNominal)
{
    // The standalone socket model (Table III) and the domain-split CPU
    // package model describe the same 8180 silicon: within a few watts
    // at the nominal all-core point.
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    auto cpu = hw::CpuModel::skylake8180();
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    const auto socket_sol = socket.solve({2.6, 0.90, 1.0}, fc);
    const auto package = cpu.power(fc, 1.0);
    EXPECT_NEAR(package.total, socket_sol.total, 8.0);
    EXPECT_NEAR(package.tj, socket_sol.tj, 2.0);
}

TEST(Consistency, ServerBudgetUsesTheSameSocketModel)
{
    // ServerPowerModel's socket contribution equals two standalone
    // socket solves.
    auto server = power::ServerPowerModel::openComputeBlade(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    const power::OperatingPoint op{2.6, 0.90, 1.0};
    const auto breakdown = server.compute(op, air);
    const auto single = server.socketModel().solve(op, air);
    EXPECT_NEAR(breakdown.sockets, 2.0 * single.total, 1e-6);
}

TEST(Consistency, QueueingLatencyTracksBottleneckModel)
{
    // At light load (no queueing), the cluster's mean latency between
    // two frequencies scales like the service-time model predicts.
    auto run = [](GHz freq) {
        sim::Simulation sim;
        workload::QueueingCluster::Params params;
        params.serviceMean = 2.6e-3;
        params.kappa = 0.9;
        workload::QueueingCluster cluster(sim, util::Rng(21), params);
        cluster.addServer(freq);
        cluster.setArrivalRate(100.0); // ~6.5% utilization: no queueing.
        sim.runUntil(200.0);
        return cluster.latencies().mean();
    };
    const double ratio = run(4.1) / run(3.4);
    EXPECT_NEAR(ratio, workload::serviceTimeScale(0.9, 3.4, 4.1), 0.02);
}

TEST(Consistency, TrainingPowerMatchesGpuModel)
{
    // The GPU training model's power is exactly the GPU model's power at
    // the VGG activity.
    const auto &vgg = workload::vggModel("VGG16");
    workload::GpuTrainingModel training;
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG2"));
    EXPECT_DOUBLE_EQ(training.trainingPower(vgg, gpu),
                     gpu.power(vgg.activity).total);
}

TEST(Consistency, TankCoolingEqualsStandaloneTwoPhaseSystem)
{
    // The tank's cooling-system view is interchangeable with a
    // separately constructed TwoPhaseImmersionCooling.
    auto tank = thermal::makeSmallTank1();
    thermal::TwoPhaseImmersionCooling standalone(
        thermal::hfe7000(),
        {thermal::BoilingInterface::Coating::DirectIhs});
    for (Watts p : {100.0, 250.0, 400.0}) {
        EXPECT_DOUBLE_EQ(tank.coolingSystem().junctionTemperature(p),
                         standalone.junctionTemperature(p));
    }
}

TEST(Consistency, ImmersionSavingsMatchTableICatalogNumbers)
{
    // The 182 W decomposition must be derivable purely from Table I's
    // published PUEs — no hidden constants.
    const auto &air = thermal::coolingTechSpec(
        thermal::CoolingTech::DirectEvaporative);
    const auto &two_phase =
        thermal::coolingTechSpec(thermal::CoolingTech::Immersion2P);
    const auto savings = power::immersionSavings(700.0, 42.0, 11.0, 2);
    const double expected_pue_saving =
        700.0 * air.peakPue * (air.peakPue - two_phase.peakPue) /
        air.peakPue;
    EXPECT_NEAR(savings.pueOverhead, expected_pue_saving, 1e-9);
}

TEST(Consistency, EnvironmentEnergyMatchesFacilityModel)
{
    // The environmental model's annual energy equals the facility
    // model's average-PUE draw integrated over a year.
    thermal::EnvironmentModel environment;
    const auto footprint = environment.footprint(
        thermal::CoolingTech::Immersion2P, 636.0);
    power::Facility facility(thermal::CoolingTech::Immersion2P);
    const double expected_kwh =
        facility.facilityPowerAverage(636.0) / 1000.0 *
        units::kHoursPerYear;
    EXPECT_NEAR(footprint.energyKwh, expected_kwh, 1e-6);
}

TEST(Consistency, BottleneckPlannerAgreesWithPerfModelOrdering)
{
    // For every catalog app, the analyzer's config must deliver at least
    // as much metric improvement as the baseline B2 (never recommend a
    // regression).
    const core::BottleneckAnalyzer analyzer;
    for (const auto &app : workload::appCatalog()) {
        const auto &config = analyzer.configForApp(app);
        const double rel = workload::relativeMetric(
            app, {config.core, config.llc, config.memory});
        if (workload::lowerIsBetter(app.metric))
            EXPECT_LE(rel, 1.0 + 1e-9) << app.name;
        else
            EXPECT_GE(rel, 1.0 - 1e-9) << app.name;
    }
}

TEST(Consistency, HypervisorAndClusterAgreeOnServiceScaling)
{
    // The hypervisor's CPU-normalised components and the queueing
    // cluster's kappa-based scaling express the same frequency law for a
    // core-dominated app.
    const auto &cs = workload::app("Client-Server");
    const double kappa = cs.work.scalableFraction();
    const hw::DomainClocks oc1{4.1, 2.4, 2.4};
    const hw::DomainClocks ref = workload::referenceClocks();
    const double rel_cpu =
        (cs.work.core * (ref.core / oc1.core) +
         cs.work.llc * (ref.llc / oc1.llc) +
         cs.work.mem * (ref.memory / oc1.memory)) /
        (cs.work.core + cs.work.llc + cs.work.mem);
    EXPECT_NEAR(rel_cpu, workload::serviceTimeScale(kappa, 3.4, 4.1),
                1e-9);
}

} // namespace
} // namespace imsim
