/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

TEST(Simulation, EventsFireInTimeOrder)
{
    sim::Simulation sim;
    std::vector<int> order;
    sim.at(3.0, [&] { order.push_back(3); });
    sim.at(1.0, [&] { order.push_back(1); });
    sim.at(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.eventsExecuted(), 3u);
}

TEST(Simulation, TiesFireInSchedulingOrder)
{
    sim::Simulation sim;
    std::vector<int> order;
    sim.at(1.0, [&] { order.push_back(1); });
    sim.at(1.0, [&] { order.push_back(2); });
    sim.at(1.0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ClockAdvancesToEventTime)
{
    sim::Simulation sim;
    Seconds seen = -1.0;
    sim.at(5.5, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(Simulation, AfterSchedulesRelativeToNow)
{
    sim::Simulation sim;
    Seconds inner = -1.0;
    sim.at(2.0, [&] {
        sim.after(3.0, [&] { inner = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(inner, 5.0);
}

TEST(Simulation, SchedulingInThePastIsFatal)
{
    sim::Simulation sim;
    bool threw = false;
    sim.at(2.0, [&] {
        try {
            sim.at(1.0, [] {});
        } catch (const FatalError &) {
            threw = true;
        }
    });
    sim.run();
    EXPECT_TRUE(threw);
}

TEST(Simulation, NegativeDelayIsFatal)
{
    sim::Simulation sim;
    EXPECT_THROW(sim.after(-1.0, [] {}), FatalError);
    EXPECT_THROW(sim.every(0.0, [] {}), FatalError);
}

TEST(Simulation, PeriodicEventRepeats)
{
    sim::Simulation sim;
    int fires = 0;
    sim.every(1.0, [&] { ++fires; });
    sim.runUntil(10.5);
    EXPECT_EQ(fires, 10);
    EXPECT_DOUBLE_EQ(sim.now(), 10.5);
}

TEST(Simulation, CancelStopsPeriodicEvent)
{
    sim::Simulation sim;
    int fires = 0;
    const sim::EventId id = sim.every(1.0, [&] { ++fires; });
    sim.at(3.5, [&] { sim.cancel(id); });
    sim.runUntil(10.0);
    EXPECT_EQ(fires, 3);
}

TEST(Simulation, CancelOneShotBeforeFiring)
{
    sim::Simulation sim;
    bool fired = false;
    const sim::EventId id = sim.at(5.0, [&] { fired = true; });
    sim.at(1.0, [&] { sim.cancel(id); });
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownIdIsIgnored)
{
    sim::Simulation sim;
    EXPECT_NO_THROW(sim.cancel(9999));
    sim.run();
}

TEST(Simulation, PendingEventsExcludesCancelled)
{
    sim::Simulation sim;
    const auto id1 = sim.at(1.0, [] {});
    sim.at(2.0, [] {});
    const auto id3 = sim.at(3.0, [] {});
    EXPECT_EQ(sim.pendingEvents(), 3u);
    sim.cancel(id1);
    sim.cancel(id3);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.cancel(id3); // Double cancel changes nothing.
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(sim.eventsExecuted(), 1u);
}

TEST(Simulation, CancelledPeriodicEventLeavesNoPendingResidue)
{
    sim::Simulation sim;
    const auto id = sim.every(1.0, [] {});
    sim.at(3.5, [&] { sim.cancel(id); });
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulation, ManyCancellationsStayCheap)
{
    // Regression guard for the old O(n^2) lazy-cancellation scan: 20k
    // cancelled one-shots must pop in (amortised) constant time each.
    sim::Simulation sim;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 20000; ++i)
        ids.push_back(sim.at(1.0 + i * 1e-3, [] {}));
    for (const auto id : ids)
        sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulation, RunUntilLeavesFutureEventsPending)
{
    sim::Simulation sim;
    bool fired = false;
    sim.at(10.0, [&] { fired = true; });
    sim.runUntil(5.0);
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    sim.runUntil(15.0);
    EXPECT_TRUE(fired);
}

TEST(Simulation, EventExactlyAtHorizonFires)
{
    sim::Simulation sim;
    bool fired = false;
    sim.at(5.0, [&] { fired = true; });
    sim.runUntil(5.0);
    EXPECT_TRUE(fired);
}

TEST(Simulation, StopHaltsExecution)
{
    sim::Simulation sim;
    int fires = 0;
    sim.every(1.0, [&] {
        ++fires;
        if (fires == 4)
            sim.stop();
    });
    sim.runUntil(100.0);
    EXPECT_EQ(fires, 4);
}

TEST(Simulation, EventsCanScheduleCascades)
{
    sim::Simulation sim;
    int depth = 0;
    std::function<void()> cascade = [&] {
        if (++depth < 50)
            sim.after(0.1, cascade);
    };
    sim.after(0.1, cascade);
    sim.run();
    EXPECT_EQ(depth, 50);
    EXPECT_NEAR(sim.now(), 5.0, 1e-9);
}

TEST(Simulation, ManyEventsAreHandled)
{
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
        sim.at(static_cast<double>(i % 100), [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 10000);
}

// The documented horizon-boundary contract: an event scheduled exactly
// at the horizon fires, including events that a horizon-time event
// itself schedules for the horizon; strictly-later events stay queued.
TEST(Simulation, HorizonTimeEventCascadesAtTheHorizon)
{
    sim::Simulation sim;
    std::vector<int> order;
    sim.at(5.0, [&] {
        order.push_back(1);
        sim.at(5.0, [&] {
            order.push_back(2);
            // Zero-delay from a horizon-time event: still at 5.0.
            sim.after(0.0, [&] { order.push_back(3); });
        });
        // Strictly past the horizon: must not fire yet.
        sim.after(0.5, [&] { order.push_back(99); });
    });
    sim.runUntil(5.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.pendingEvents(), 1u);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);

    sim.runUntil(6.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 99}));
}

// eventsExecuted() counts fired callbacks only: cancelled events the
// loop pops and skips are excluded, under run() ...
TEST(Simulation, EventsExecutedExcludesCancelledUnderRun)
{
    sim::Simulation sim;
    int fired = 0;
    const auto cancelled = sim.at(1.0, [&] { ++fired; });
    sim.at(2.0, [&] { ++fired; });
    sim.cancel(cancelled);
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.eventsExecuted(), 1u);
}

// ... and under runUntil(), even when the cancelled event sits exactly
// at the horizon.
TEST(Simulation, EventsExecutedExcludesCancelledUnderRunUntil)
{
    sim::Simulation sim;
    int fired = 0;
    sim.at(1.0, [&] { ++fired; });
    const auto at_horizon = sim.at(5.0, [&] { ++fired; });
    sim.cancel(at_horizon);
    sim.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.eventsExecuted(), 1u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

// ---------------------------------------------------------------------
// Slab semantics: the kernel reuses callback slots through a free list,
// which must never change the observable contract.
// ---------------------------------------------------------------------

// Cancelling a periodic event *between* firings (after it has been
// popped and re-armed at least once) kills every future firing.
TEST(Simulation, CancelReArmedPeriodicBetweenFirings)
{
    sim::Simulation sim;
    int fires = 0;
    const auto id = sim.every(1.0, [&] { ++fires; });
    sim.runUntil(2.5); // Fired at 1.0 and 2.0; re-armed for 3.0.
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    sim.runUntil(20.0);
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(sim.eventsExecuted(), 2u);
}

// A handle to a dead event must stay dead: even when the kernel reuses
// the event's internal slot, cancelling the stale handle (repeatedly)
// never touches the slot's new occupant.
TEST(Simulation, IdReuseNeverResurrectsCancelledEvent)
{
    sim::Simulation sim;
    std::vector<sim::EventId> stale;
    for (int i = 0; i < 8; ++i)
        stale.push_back(sim.at(1.0 + 0.1 * i, [] {}));
    for (const auto id : stale)
        sim.cancel(id);
    sim.run(); // Reclaims all slots.
    EXPECT_EQ(sim.eventsExecuted(), 0u);

    // These reuse the freed slots.
    int fired = 0;
    std::vector<sim::EventId> fresh;
    for (int i = 0; i < 8; ++i)
        fresh.push_back(sim.at(2.0 + 0.1 * i, [&] { ++fired; }));
    for (const auto id : stale) {
        EXPECT_EQ(std::find(fresh.begin(), fresh.end(), id), fresh.end())
            << "a recycled slot must hand out a fresh handle";
    }
    for (const auto id : stale)
        sim.cancel(id); // Stale handles: must all be no-ops.
    EXPECT_EQ(sim.pendingEvents(), 8u);
    sim.run();
    EXPECT_EQ(fired, 8);
    EXPECT_EQ(sim.eventsExecuted(), 8u);
}

// A periodic event that cancels itself mid-firing stops after that
// firing and leaves no pending residue.
TEST(Simulation, PeriodicSelfCancelDuringFiringStopsFutureFirings)
{
    sim::Simulation sim;
    int fires = 0;
    sim::EventId self = 0;
    self = sim.every(1.0, [&] {
        ++fires;
        if (fires == 3)
            sim.cancel(self);
    });
    sim.run();
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

// Cancelling a one-shot from inside its own callback is a no-op (the
// event is no longer pending while it executes) and must not emit a
// cancellation to observers.
TEST(Simulation, OneShotSelfCancelDuringExecutionIsNoOp)
{
    struct CancelCounter : sim::KernelHooks
    {
        int cancels = 0;
        void onCancel(sim::EventId) override { ++cancels; }
    };

    sim::Simulation sim;
    CancelCounter hooks;
    sim.setHooks(&hooks);
    sim::EventId self = 0;
    int fired = 0;
    self = sim.at(1.0, [&] {
        ++fired;
        sim.cancel(self);
    });
    sim.run();
    sim.setHooks(nullptr);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(hooks.cancels, 0);
    EXPECT_EQ(sim.eventsExecuted(), 1u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

// The recorded-scenario regression: a mixed workload whose
// eventsExecuted()/pendingEvents() trajectory was captured on the
// pre-slab kernel. The refactor must reproduce it exactly.
TEST(Simulation, CountsMatchRecordedScenario)
{
    sim::Simulation sim;
    int fires = 0;
    const auto heartbeat = sim.every(2.0, [&] { ++fires; });
    const auto doomed_periodic = sim.every(3.0, [&] { ++fires; });
    sim.at(1.0, [&] { ++fires; });
    const auto doomed_oneshot = sim.at(4.0, [&] { ++fires; });
    sim.cancel(doomed_oneshot);
    EXPECT_EQ(sim.pendingEvents(), 3u);

    // Recorded on the pre-refactor kernel: the one-shot at 1.0, the
    // heartbeat at 2.0 and 4.0, the doomed periodic at 3.0 = 4
    // executions by t=5.0 (the cancelled one-shot at 4.0 is skipped).
    sim.runUntil(5.0);
    EXPECT_EQ(fires, 4);
    EXPECT_EQ(sim.eventsExecuted(), 4u);
    EXPECT_EQ(sim.pendingEvents(), 2u);

    sim.cancel(doomed_periodic);
    EXPECT_EQ(sim.pendingEvents(), 1u);

    // Heartbeat alone: 6.0, 8.0, 10.0 -> 7 total executions.
    sim.runUntil(10.0);
    EXPECT_EQ(fires, 7);
    EXPECT_EQ(sim.eventsExecuted(), 7u);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.cancel(heartbeat);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 7u);
}

// Handles order by schedule time even across slot reuse, which is what
// keeps same-timestamp ties deterministic fleet-wide.
TEST(Simulation, ReusedSlotsPreserveTieOrder)
{
    sim::Simulation sim;
    // Churn the slab so later schedules land on recycled slots.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 16; ++i)
            sim.at(static_cast<double>(round) + 0.5, [] {});
        sim.runUntil(static_cast<double>(round) + 0.75);
    }
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        sim.at(100.0, [&order, i] { order.push_back(i); });
    sim.run();
    std::vector<int> expect(16);
    for (int i = 0; i < 16; ++i)
        expect[i] = i;
    EXPECT_EQ(order, expect);
}

} // namespace
} // namespace imsim
