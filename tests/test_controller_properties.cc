/**
 * @file
 * Property sweeps over the control plane and TCO models: the overclock
 * controller's grants must be monotone in the obvious directions (more
 * power budget never yields a lower grant; longer episodes never yield a
 * higher one), the TCO deltas must respond correctly to their physical
 * drivers, and the SKU economics must be monotone in costs.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/controller.hh"
#include "core/sku.hh"
#include "tco/tco.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

struct ControllerRig
{
    hw::CpuModel cpu = hw::CpuModel::xeonW3175x();
    thermal::TwoPhaseImmersionCooling cooling{thermal::hfe7000()};
    reliability::LifetimeModel lifetime;
    reliability::WearTracker tracker{lifetime, 5.0};
    reliability::ErrorRateWatchdog watchdog{3600.0, 10.0};
    power::RaplCapper budget{450.0};

    ControllerRig() { cpu.applyConfig(hw::cpuConfig("OC1")); }
};

class ControllerSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ControllerSweep, GrantMonotoneInPowerBudget)
{
    const double activity = GetParam();
    GHz prev = 0.0;
    for (Watts limit : {260.0, 300.0, 350.0, 400.0, 460.0}) {
        ControllerRig rig;
        rig.budget.setPowerLimit(limit);
        core::OverclockController controller(rig.cpu, rig.cooling,
                                             rig.tracker, rig.watchdog,
                                             rig.budget);
        const auto decision =
            controller.request(4.1, 1.0, activity, 0.0);
        EXPECT_GE(decision.grantedCore, prev - 1e-9)
            << "limit=" << limit << " activity=" << activity;
        prev = decision.grantedCore;
    }
}

TEST_P(ControllerSweep, GrantNeverExceedsRequestOrBoundary)
{
    const double activity = GetParam();
    ControllerRig rig;
    core::OverclockController controller(rig.cpu, rig.cooling,
                                         rig.tracker, rig.watchdog,
                                         rig.budget);
    for (GHz target : {3.6, 3.9, 4.1, 4.4}) {
        const auto decision =
            controller.request(target, 2.0, activity, 0.0);
        EXPECT_LE(decision.grantedCore, target + 1e-9);
        EXPECT_LE(decision.grantedCore,
                  rig.cpu.governor().overclockBoundary() + 1e-9);
        EXPECT_GE(decision.grantedCore, 3.4 - 1e-9);
    }
}

TEST_P(ControllerSweep, LongerEpisodesNeverGrantMore)
{
    const double activity = GetParam();
    // A part with only a little banked credit: long red-band episodes
    // must be trimmed harder than short ones.
    ControllerRig rig;
    reliability::StressCondition cool{0.90, 51.0, 35.0, 1.0, 0.6};
    rig.tracker.accrue(cool, 0.5);
    core::OverclockController controller(rig.cpu, rig.cooling,
                                         rig.tracker, rig.watchdog,
                                         rig.budget);
    GHz prev = 10.0;
    for (double hours : {1.0, 24.0, 24.0 * 30, 24.0 * 365, 24.0 * 3650}) {
        const auto decision =
            controller.request(4.1, hours, activity, 0.0);
        EXPECT_LE(decision.grantedCore, prev + 1e-9)
            << "hours=" << hours;
        prev = decision.grantedCore;
    }
}

INSTANTIATE_TEST_SUITE_P(ActivitySweep, ControllerSweep,
                         ::testing::Values(0.3, 0.6, 0.9));

// --- TCO driver sensitivity -----------------------------------------------------

class TcoDrivers
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(TcoDrivers, BetterPueAlwaysLowersCostPerCore)
{
    const auto [immersion_pue, tank_cost] = GetParam();
    tco::TcoInputs inputs;
    inputs.immersionPue = immersion_pue;
    inputs.immersionCostFraction = tank_cost;
    const tco::TcoModel model(inputs);
    const double delta =
        model.evaluate(tco::Scenario::NonOverclockable2Pic)
            .costPerCoreDelta;

    tco::TcoInputs worse = inputs;
    worse.immersionPue = immersion_pue + 0.04;
    const double worse_delta =
        tco::TcoModel(worse)
            .evaluate(tco::Scenario::NonOverclockable2Pic)
            .costPerCoreDelta;
    EXPECT_LT(delta, worse_delta);
}

TEST_P(TcoDrivers, TankCostPassesStraightThrough)
{
    const auto [immersion_pue, tank_cost] = GetParam();
    tco::TcoInputs inputs;
    inputs.immersionPue = immersion_pue;
    inputs.immersionCostFraction = tank_cost;
    tco::TcoInputs pricier = inputs;
    pricier.immersionCostFraction = tank_cost + 0.01;
    const double delta =
        tco::TcoModel(inputs)
            .evaluate(tco::Scenario::Overclockable2Pic)
            .costPerCoreDelta;
    const double pricier_delta =
        tco::TcoModel(pricier)
            .evaluate(tco::Scenario::Overclockable2Pic)
            .costPerCoreDelta;
    EXPECT_NEAR(pricier_delta - delta, 0.01, 1e-9);
}

TEST_P(TcoDrivers, MoreOversubscriptionNeverRaisesVcoreCost)
{
    const auto [immersion_pue, tank_cost] = GetParam();
    tco::TcoInputs inputs;
    inputs.immersionPue = immersion_pue;
    inputs.immersionCostFraction = tank_cost;
    const tco::TcoModel model(inputs);
    double prev = 1e9;
    for (double ratio : {0.0, 0.05, 0.10, 0.15}) {
        const double rel = model.costPerVcoreRelative(
            tco::Scenario::Overclockable2Pic, ratio);
        EXPECT_LT(rel, prev);
        prev = rel;
    }
}

INSTANTIATE_TEST_SUITE_P(
    InputSweep, TcoDrivers,
    ::testing::Combine(::testing::Values(1.03, 1.05, 1.08),
                       ::testing::Values(0.005, 0.01, 0.02)));

// --- SKU economics monotonicity ----------------------------------------------------

class SkuSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SkuSweep, HigherEnergyPriceRaisesBreakEven)
{
    core::SkuCostInputs cheap;
    cheap.energyPricePerKwh = 0.05;
    core::SkuCostInputs dear;
    dear.energyPricePerKwh = 0.20;
    const auto &app = workload::app(GetParam());
    const auto low = core::priceHighPerfSku(app, 4, 110.0, 2e-6, cheap);
    const auto high = core::priceHighPerfSku(app, 4, 110.0, 2e-6, dear);
    EXPECT_GT(high.breakEvenPremium, low.breakEvenPremium);
    EXPECT_DOUBLE_EQ(high.valuePremium, low.valuePremium);
}

TEST_P(SkuSweep, MoreWearRaisesBreakEven)
{
    const auto &app = workload::app(GetParam());
    const auto gentle = core::priceHighPerfSku(app, 4, 110.0, 1e-6);
    const auto harsh = core::priceHighPerfSku(app, 4, 110.0, 1e-4);
    EXPECT_GT(harsh.breakEvenPremium, gentle.breakEvenPremium);
}

INSTANTIATE_TEST_SUITE_P(AppSweep, SkuSweep,
                         ::testing::Values("BI", "SQL", "SPECJBB",
                                           "TeraSort"));

} // namespace
} // namespace imsim
