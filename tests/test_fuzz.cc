/**
 * @file
 * Randomised (fuzz) property tests: the auto-scaler driven by random
 * load schedules, random thermal networks, random hotspot parameters,
 * and random pack/evict/repack cycles — asserting the invariants that
 * must survive any input.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "autoscale/autoscaler.hh"
#include "cluster/migration.hh"
#include "cluster/packing.hh"
#include "sim/simulation.hh"
#include "thermal/network.hh"
#include "util/random.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSeeds, AutoScalerInvariantsUnderRandomLoad)
{
    util::Rng rng(GetParam());
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    params.kappa = rng.uniform(0.5, 1.0);
    workload::QueueingCluster cluster(sim, rng.child(), params);
    cluster.addServer(3.4);

    autoscale::AutoScalerConfig config;
    config.policy = static_cast<autoscale::Policy>(rng.uniformInt(0, 2));
    config.maxVms = static_cast<std::size_t>(rng.uniformInt(2, 8));
    autoscale::AutoScaler scaler(sim, cluster, config);
    scaler.start();

    // Random load schedule: 10 segments of 60-180 s, 0-4500 QPS.
    Seconds t = 0.0;
    for (int seg = 0; seg < 10; ++seg) {
        const double qps = rng.uniform(0.0, 4500.0);
        if (t == 0.0)
            cluster.setArrivalRate(qps);
        else
            sim.at(t, [&cluster, qps] { cluster.setArrivalRate(qps); });
        t += rng.uniform(60.0, 180.0);
    }
    sim.runUntil(t);

    // Invariants.
    EXPECT_GE(cluster.activeServers(), config.minVms);
    EXPECT_LE(cluster.maxServers(), config.maxVms);
    EXPECT_GE(scaler.fleetFrequency(), config.baseFrequency - 1e-9);
    EXPECT_LE(scaler.fleetFrequency(), config.maxFrequency + 1e-9);
    Seconds prev = -1.0;
    for (const auto &point : scaler.trace()) {
        EXPECT_GT(point.time, prev);
        prev = point.time;
        EXPECT_GE(point.util30, 0.0);
        EXPECT_LE(point.util30, 1.0 + 1e-9);
        EXPECT_GE(point.vms, config.minVms);
        EXPECT_LE(point.vms, config.maxVms);
        EXPECT_GE(point.frequency, config.baseFrequency - 1e-9);
        EXPECT_LE(point.frequency, config.maxFrequency + 1e-9);
    }
    EXPECT_GE(scaler.averageFrequency(), config.baseFrequency - 1e-9);
    EXPECT_LE(scaler.averageFrequency(), config.maxFrequency + 1e-9);
    // Latencies (when any) are positive and finite.
    if (cluster.completed() > 0) {
        EXPECT_GT(cluster.latencies().percentile(0.0), 0.0);
        EXPECT_LT(cluster.latencies().percentile(100.0), t);
    }
}

TEST_P(FuzzSeeds, ThermalNetworkSettleAgreesWithLongIntegration)
{
    util::Rng rng(GetParam() + 1000);
    thermal::ThermalNetwork net;
    const int n = static_cast<int>(rng.uniformInt(2, 6));
    std::vector<thermal::ThermalNetwork::NodeId> ids;
    for (int i = 0; i < n; ++i)
        ids.push_back(net.addNode("n" + std::to_string(i),
                                  rng.uniform(10.0, 500.0),
                                  rng.uniform(20.0, 60.0)));
    const auto ambient = net.addAmbient("amb", rng.uniform(15.0, 35.0));
    // Chain topology plus random extra couplings keeps it connected.
    for (int i = 0; i < n; ++i) {
        net.couple(ids[static_cast<std::size_t>(i)],
                   i == 0 ? ambient : ids[static_cast<std::size_t>(i - 1)],
                   rng.uniform(0.02, 0.3));
    }
    net.inject(ids[static_cast<std::size_t>(n - 1)],
               rng.uniform(50.0, 400.0));

    thermal::ThermalNetwork integrated = net;
    for (int i = 0; i < 200; ++i)
        integrated.step(60.0);
    net.settle();
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(
            integrated.temperature(ids[static_cast<std::size_t>(i)]),
            net.temperature(ids[static_cast<std::size_t>(i)]), 0.05);
    }
}

TEST_P(FuzzSeeds, HotspotStopGapNeverWorseThanMigrateAlone)
{
    util::Rng rng(GetParam() + 2000);
    for (int trial = 0; trial < 20; ++trial) {
        cluster::MigrationParams params;
        params.memoryGb = rng.uniform(4.0, 64.0);
        params.bandwidthGbps = rng.uniform(5.0, 40.0);
        params.dirtyRateGbps = rng.uniform(0.1, 4.0);
        cluster::MigrationModel migration(params);
        const double slowdown = rng.uniform(0.5, 0.95);
        const double speedup = rng.uniform(1.05, 1.25);
        const Seconds hotspot = rng.uniform(60.0, 7200.0);

        const auto migrate = cluster::evaluateHotspot(
            cluster::HotspotResponse::MigrateOnly, slowdown, speedup,
            hotspot, migration, 1e-5);
        const auto stopgap = cluster::evaluateHotspot(
            cluster::HotspotResponse::OverclockStopGap, slowdown, speedup,
            hotspot, migration, 1e-5);
        EXPECT_LE(stopgap.degradationSeconds,
                  migrate.degradationSeconds + 1e-9);
    }
}

TEST_P(FuzzSeeds, PackEvictRepackConservesVms)
{
    util::Rng rng(GetParam() + 3000);
    cluster::BinPacker packer({40, 256.0}, 12,
                              1.0 + 0.1 * rng.uniformInt(0, 2));
    std::size_t placed = 0;
    for (int i = 0; i < 150; ++i) {
        vm::VmSpec spec;
        spec.id = static_cast<vm::VmId>(i);
        spec.vcores = static_cast<int>(rng.uniformInt(1, 8));
        spec.memoryGb = static_cast<double>(rng.uniformInt(2, 32));
        if (packer.place(spec))
            ++placed;
    }
    // Fail a random host and re-place its VMs (the failover path).
    const auto victim =
        static_cast<std::size_t>(rng.uniformInt(0, 11));
    const auto evicted = packer.evictHost(victim);
    std::size_t replaced = 0;
    for (const auto &spec : evicted)
        if (packer.place(spec))
            ++replaced;
    const auto stats = packer.stats();
    // Everything that stayed placed is accounted for.
    std::size_t hosted = 0;
    for (const auto &host : packer.hosts())
        hosted += host.vms.size();
    EXPECT_EQ(hosted, placed - evicted.size() + replaced);
    EXPECT_EQ(stats.hostsTotal, 12u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11u, 29u, 73u, 547u, 9001u));

} // namespace
} // namespace imsim
