/**
 * @file
 * Unit tests for the lifetime-model calibration fitter (the vendor's
 * accelerated-testing workflow) and the GPU overclocking planner.
 */

#include <gtest/gtest.h>

#include "core/gpu_planner.hh"
#include "reliability/calibration.hh"
#include "reliability/lifetime.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using reliability::ModelConstants;

// --- Calibration fitter ---------------------------------------------------------

TEST(Calibration, ParameterisedModelMatchesShippedModel)
{
    // With the default constants, lifetimeWith() must agree with the
    // shipped LifetimeModel on every Table V scenario.
    const ModelConstants defaults;
    const reliability::LifetimeModel shipped;
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_NEAR(
            reliability::lifetimeWith(defaults, scenarios[i].condition),
            shipped.lifetime(scenarios[i].condition), 1e-9);
    }
}

TEST(Calibration, ShippedConstantsAreNearAFixedPoint)
{
    // Re-fitting from the shipped constants should barely move the loss:
    // the hard-coded numbers are reproducible from the Table V anchors.
    const auto anchors = reliability::tableVAnchors();
    const ModelConstants shipped;
    const double before = reliability::calibrationLoss(shipped, anchors);
    EXPECT_LT(before, 0.01); // Already an excellent fit.
    const auto refit = reliability::fitConstants(shipped, anchors);
    const double after = reliability::calibrationLoss(refit, anchors);
    EXPECT_LE(after, before + 1e-12);
    // The refit stays in the same neighbourhood.
    EXPECT_NEAR(refit.oxideA / shipped.oxideA, 1.0, 0.25);
    EXPECT_NEAR(refit.oxideGamma / shipped.oxideGamma, 1.0, 0.25);
}

TEST(Calibration, FitterRecoversFromPerturbedStart)
{
    // Start the fit from badly perturbed constants: it must return to a
    // configuration that satisfies every anchor band.
    const auto anchors = reliability::tableVAnchors();
    ModelConstants start;
    start.oxideA *= 2.0;
    start.oxideGamma *= 0.6;
    start.tcA *= 3.0;
    const double bad = reliability::calibrationLoss(start, anchors);
    EXPECT_GT(bad, 0.1);
    const auto fitted = reliability::fitConstants(start, anchors, 120);
    const double good = reliability::calibrationLoss(fitted, anchors);
    EXPECT_LT(good, 0.02);

    // The fitted model lands in the Table V bands.
    std::size_t count = 0;
    const auto *scenarios = reliability::tableVScenarios(count);
    EXPECT_NEAR(
        reliability::lifetimeWith(fitted, scenarios[0].condition), 5.0,
        0.8);
    EXPECT_LT(reliability::lifetimeWith(fitted, scenarios[1].condition),
              1.3);
    EXPECT_GT(reliability::lifetimeWith(fitted, scenarios[2].condition),
              8.0);
}

TEST(Calibration, AnchorsEncodeTableV)
{
    const auto anchors = reliability::tableVAnchors();
    ASSERT_EQ(anchors.size(), 6u);
    EXPECT_DOUBLE_EQ(anchors[0].target, 5.0);  // Air nominal.
    EXPECT_TRUE(anchors[1].upperBound);        // Air OC: < 1 year.
    EXPECT_TRUE(anchors[2].lowerBound);        // FC nominal: > 10.
    EXPECT_DOUBLE_EQ(anchors[3].target, 4.0);  // FC OC.
    EXPECT_TRUE(anchors[4].lowerBound);        // HFE nominal: > 10.
    EXPECT_DOUBLE_EQ(anchors[5].target, 5.0);  // HFE OC.
}

TEST(Calibration, OneSidedAnchorsHaveNoInteriorPenalty)
{
    const auto anchors = reliability::tableVAnchors();
    // A model that is *better* than every one-sided bound and exact on
    // point anchors has (near) zero loss: inflate only the FC-nominal
    // lifetime further and confirm loss does not rise.
    ModelConstants constants;
    const double base = reliability::calibrationLoss(constants, anchors);
    EXPECT_GE(base, 0.0);
    EXPECT_THROW(reliability::calibrationLoss(constants, {}), FatalError);
    EXPECT_THROW(
        reliability::fitConstants(constants, anchors, 0), FatalError);
}

// --- GPU planner -----------------------------------------------------------------

TEST(GpuPlanner, SmBoundModelAvoidsMemoryOverclock)
{
    // Fig. 11's VGG16B lesson: memory overclocking buys it nothing.
    const core::GpuPlanner planner;
    const auto plan = planner.plan(workload::vggModel("VGG16B"));
    EXPECT_EQ(plan.config->name, "OCG1");
    EXPECT_GT(plan.expectedSpeedup, 1.03);
}

TEST(GpuPlanner, MemoryHungryModelTakesTheFullOverclock)
{
    const core::GpuPlanner planner;
    const auto plan = planner.plan(workload::vggModel("VGG11"));
    EXPECT_EQ(plan.config->name, "OCG3");
    EXPECT_GT(plan.expectedSpeedup, 1.08);
    EXPECT_GT(plan.extraPower, 0.0);
}

TEST(GpuPlanner, PlannedConfigBeatsMismatchedChoicePerWatt)
{
    // For VGG16B, forcing OCG3 burns power for no extra speed: the
    // planner's OCG1 has strictly better speedup-per-watt.
    const core::GpuPlanner planner;
    const auto &vgg16b = workload::vggModel("VGG16B");
    const auto plan = planner.plan(vgg16b);

    workload::GpuTrainingModel training;
    hw::GpuModel base;
    hw::GpuModel forced;
    forced.applyConfig(hw::gpuConfig("OCG3"));
    const double forced_speedup =
        1.0 / training.relativeTime(vgg16b, forced);
    const double forced_extra = training.trainingPower(vgg16b, forced) -
                                training.trainingPower(vgg16b, base);
    const double forced_efficiency =
        (forced_speedup - 1.0) * 100.0 / forced_extra;
    EXPECT_GT(plan.powerEfficiency, forced_efficiency);
}

TEST(GpuPlanner, SpeedupHelperMatchesTrainingModel)
{
    const core::GpuPlanner planner;
    const auto &vgg16 = workload::vggModel("VGG16");
    workload::GpuTrainingModel training;
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig("OCG2"));
    EXPECT_NEAR(planner.speedup(vgg16, "OCG2"),
                1.0 / training.relativeTime(vgg16, gpu), 1e-12);
}

TEST(GpuPlanner, ThresholdValidation)
{
    EXPECT_THROW(core::GpuPlanner(0.0), FatalError);
    EXPECT_THROW(core::GpuPlanner(1.0), FatalError);
}

} // namespace
} // namespace imsim
