/**
 * @file
 * Property-based (parameterised) test sweeps over the model invariants:
 * lifetime monotonicity across the stress grid, power monotonicity along
 * the V-f curve, Eq. 1 algebraic identities, queueing conservation laws,
 * and packing feasibility over random instances.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/packing.hh"
#include "hw/counters.hh"
#include "hw/cpu.hh"
#include "power/socket_power.hh"
#include "reliability/lifetime.hh"
#include "sim/simulation.hh"
#include "thermal/cooling.hh"
#include "util/random.hh"
#include "workload/perf.hh"
#include "workload/queueing.hh"
#include "workload/stream.hh"

namespace imsim {
namespace {

// --- Lifetime monotonicity over the stress grid -------------------------------

class LifetimeGrid
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(LifetimeGrid, HotterIsNeverLonger)
{
    const auto [voltage, swing] = GetParam();
    reliability::LifetimeModel model;
    Years prev = 1e18;
    for (Celsius tj = 50.0; tj <= 105.0; tj += 5.0) {
        reliability::StressCondition cond;
        cond.voltage = voltage;
        cond.tjMax = tj;
        cond.tMin = tj - swing;
        cond.freqRatio = 1.0;
        const Years life = model.lifetime(cond);
        EXPECT_LE(life, prev + 1e-12)
            << "V=" << voltage << " swing=" << swing << " Tj=" << tj;
        prev = life;
    }
}

TEST_P(LifetimeGrid, HigherVoltageIsNeverLonger)
{
    const auto [voltage, swing] = GetParam();
    reliability::LifetimeModel model;
    reliability::StressCondition lo;
    lo.voltage = voltage;
    lo.tjMax = 80.0;
    lo.tMin = 80.0 - swing;
    reliability::StressCondition hi = lo;
    hi.voltage = voltage + 0.04;
    EXPECT_GE(model.lifetime(lo), model.lifetime(hi));
}

TEST_P(LifetimeGrid, WearScalesLinearlyInTime)
{
    const auto [voltage, swing] = GetParam();
    reliability::LifetimeModel model;
    reliability::StressCondition cond;
    cond.voltage = voltage;
    cond.tjMax = 85.0;
    cond.tMin = 85.0 - swing;
    const double one = model.wearFraction(cond, 1.0);
    const double three = model.wearFraction(cond, 3.0);
    EXPECT_NEAR(three, 3.0 * one, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    StressSweep, LifetimeGrid,
    ::testing::Combine(::testing::Values(0.90, 0.94, 0.98, 1.02),
                       ::testing::Values(10.0, 30.0, 50.0)));

// --- Power monotonicity along the V-f curve ------------------------------------

class PowerCurve : public ::testing::TestWithParam<double>
{
};

TEST_P(PowerCurve, PackagePowerMonotonicInFrequency)
{
    const double activity = GetParam();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::TwoPhaseImmersionCooling fc(thermal::fc3284());
    Watts prev = 0.0;
    for (GHz f = 1.0; f <= 3.4; f += 0.2) {
        const power::OperatingPoint op{f, socket.curve().voltageFor(f),
                                       activity};
        const Watts total = socket.solve(op, fc).total;
        EXPECT_GT(total, prev);
        prev = total;
    }
}

TEST_P(PowerCurve, JunctionTracksPower)
{
    const double activity = GetParam();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air;
    Celsius prev = 0.0;
    for (GHz f = 1.0; f <= 3.4; f += 0.4) {
        const power::OperatingPoint op{f, socket.curve().voltageFor(f),
                                       activity};
        const Celsius tj = socket.solve(op, air).tj;
        EXPECT_GT(tj, prev);
        prev = tj;
    }
}

INSTANTIATE_TEST_SUITE_P(ActivitySweep, PowerCurve,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// --- Eq. 1 identities -------------------------------------------------------------

class Eq1Identities
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(Eq1Identities, NoFrequencyChangeIsIdentity)
{
    const auto [util, kappa] = GetParam();
    EXPECT_NEAR(hw::predictedUtilization(util, kappa, 3.7, 3.7), util,
                1e-12);
}

TEST_P(Eq1Identities, RoundTripIsStable)
{
    // Predict up then back down: returns the original utilization.
    const auto [util, kappa] = GetParam();
    const double up = hw::predictedUtilization(util, kappa, 3.4, 4.1);
    // The scalable fraction measured at the higher frequency changes:
    // the scalable cycles shrank by f0/f1 while stalls stayed.
    const double scal = kappa * 3.4 / 4.1;
    const double kappa_up = scal / (scal + (1.0 - kappa));
    const double back = hw::predictedUtilization(up, kappa_up, 4.1, 3.4);
    EXPECT_NEAR(back, util, 1e-12);
}

TEST_P(Eq1Identities, HigherFrequencyNeverRaisesUtilization)
{
    const auto [util, kappa] = GetParam();
    EXPECT_LE(hw::predictedUtilization(util, kappa, 3.4, 4.1),
              util + 1e-12);
}

TEST_P(Eq1Identities, MatchesServiceTimeDual)
{
    // Eq. 1's utilization factor equals the service-time scale factor.
    const auto [util, kappa] = GetParam();
    const double factor =
        hw::predictedUtilization(util, kappa, 3.4, 4.1) /
        (util > 0.0 ? util : 1.0);
    if (util > 0.0) {
        EXPECT_NEAR(factor, workload::serviceTimeScale(kappa, 3.4, 4.1),
                    1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    UtilKappaSweep, Eq1Identities,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.45, 0.7, 0.95),
                       ::testing::Values(0.0, 0.3, 0.6, 0.9, 1.0)));

// --- Performance model invariants ---------------------------------------------------

class PerfInvariants : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PerfInvariants, FasterClocksNeverHurt)
{
    const auto &app = workload::app(GetParam());
    const hw::DomainClocks ref = workload::referenceClocks();
    for (double step : {0.1, 0.4, 0.7}) {
        hw::DomainClocks faster{ref.core + step, ref.llc + step,
                                ref.memory + step};
        EXPECT_LE(workload::relativeTime(app.work, faster), 1.0 + 1e-12);
    }
}

TEST_P(PerfInvariants, IoFloorBoundsSpeedup)
{
    // No clock setting can squeeze out the IO fraction.
    const auto &app = workload::app(GetParam());
    const hw::DomainClocks extreme{8.0, 8.0, 8.0};
    EXPECT_GE(workload::relativeTime(app.work, extreme),
              app.work.io - 1e-12);
}

TEST_P(PerfInvariants, SpeedupIsReciprocalOfTime)
{
    const auto &app = workload::app(GetParam());
    const hw::DomainClocks clocks{4.1, 2.8, 3.0};
    EXPECT_NEAR(workload::speedup(app.work, clocks) *
                    workload::relativeTime(app.work, clocks),
                1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AppSweep, PerfInvariants,
                         ::testing::Values("SQL", "Training", "Key-Value",
                                           "BI", "Client-Server",
                                           "Pmbench", "DiskSpeed",
                                           "SPECJBB", "TeraSort"));

// --- STREAM invariants ----------------------------------------------------------------

class StreamInvariants
    : public ::testing::TestWithParam<workload::StreamKernel>
{
};

TEST_P(StreamInvariants, BandwidthMonotonicInEachDomain)
{
    workload::StreamModel model;
    const hw::DomainClocks base{3.1, 2.4, 2.4};
    const GBps reference = model.bandwidth(GetParam(), base);
    EXPECT_GT(model.bandwidth(GetParam(), {3.5, 2.4, 2.4}), reference);
    EXPECT_GT(model.bandwidth(GetParam(), {3.1, 2.8, 2.4}), reference);
    EXPECT_GT(model.bandwidth(GetParam(), {3.1, 2.4, 3.0}), reference);
}

TEST_P(StreamInvariants, RelativeIsOneAtB1)
{
    workload::StreamModel model;
    EXPECT_NEAR(model.relativeToB1(GetParam(), {3.1, 2.4, 2.4}), 1.0,
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(KernelSweep, StreamInvariants,
                         ::testing::Values(workload::StreamKernel::Copy,
                                           workload::StreamKernel::Scale,
                                           workload::StreamKernel::Add,
                                           workload::StreamKernel::Triad));

// --- Queueing conservation over seeds ---------------------------------------------------

class QueueingSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueueingSeeds, CompletionsPlusBacklogMatchArrivals)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(GetParam()), params);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(1500.0);
    sim.runUntil(60.0);
    cluster.setArrivalRate(0.0);
    sim.runUntil(180.0); // Drain.
    EXPECT_EQ(cluster.queueDepth(), 0u);
    // All latency samples are non-negative and finite.
    EXPECT_GE(cluster.latencies().percentile(0.0), 0.0);
    EXPECT_LT(cluster.latencies().percentile(100.0), 60.0);
    EXPECT_GT(cluster.completed(), 60000u);
}

TEST_P(QueueingSeeds, UtilizationWithinPhysicalBounds)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    workload::QueueingCluster cluster(sim, util::Rng(GetParam()), params);
    cluster.addServer(3.4);
    cluster.setArrivalRate(5000.0); // Saturating.
    sim.runUntil(60.0);
    const double util = cluster.fleetUtilization(30.0);
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, QueueingSeeds,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// --- Packing feasibility over random instances ---------------------------------------------

class PackingSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PackingSeeds, NoHostEverExceedsItsCapacity)
{
    util::Rng rng(GetParam());
    const double oversub = 1.0 + 0.05 * static_cast<double>(
                                           rng.uniformInt(0, 4));
    cluster::BinPacker packer({40, 256.0}, 20, oversub);
    for (int i = 0; i < 300; ++i) {
        vm::VmSpec spec;
        spec.vcores = static_cast<int>(rng.uniformInt(1, 16));
        spec.memoryGb = static_cast<double>(rng.uniformInt(2, 64));
        packer.place(spec);
    }
    for (const auto &host : packer.hosts()) {
        EXPECT_LE(host.vcoresUsed,
                  static_cast<double>(host.spec.pcores) * oversub + 1e-9);
        EXPECT_LE(host.memoryUsedGb, host.spec.memoryGb + 1e-9);
        int vcores = 0;
        for (const auto &vm_spec : host.vms)
            vcores += vm_spec.vcores;
        EXPECT_EQ(vcores, host.vcoresUsed);
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PackingSeeds,
                         ::testing::Values(3u, 17u, 2026u));

} // namespace
} // namespace imsim
