/**
 * @file
 * Unit tests for the fault-injection subsystem: FaultPlan validation,
 * the injector's typed faults against cluster/tank/feed, the stochastic
 * crash process's determinism, the invariant checker, and the
 * capacity-crisis experiment's reproducibility and qualitative outcome.
 */

#include <gtest/gtest.h>

#include "autoscale/autoscaler.hh"
#include "fault/experiment.hh"
#include "fault/injector.hh"
#include "fault/invariants.hh"
#include "fault/plan.hh"
#include "obs/fleet_agg.hh"
#include "power/capping.hh"
#include "sim/simulation.hh"
#include "thermal/cooling.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace {

using fault::Fault;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::InvariantChecker;
using fault::kAnyServer;

// --- FaultPlan validation ------------------------------------------------

TEST(FaultPlan, RejectsBadScriptedFaults)
{
    FaultPlan plan;
    EXPECT_THROW(plan.at(-1.0, Fault{FaultKind::ServerCrash}), FatalError);
    // Cooling level must lie in [0.05, 1): 0 would boil the tank dry,
    // 1 is not a degradation.
    EXPECT_THROW(
        plan.at(0.0, Fault{FaultKind::CoolingDegrade, kAnyServer, 0.0}),
        FatalError);
    EXPECT_THROW(
        plan.at(0.0, Fault{FaultKind::CoolingDegrade, kAnyServer, 1.0}),
        FatalError);
    // Feed fraction must lie in (0, 1).
    EXPECT_THROW(
        plan.at(0.0, Fault{FaultKind::PowerDerate, kAnyServer, 0.0}),
        FatalError);
    EXPECT_THROW(
        plan.at(0.0, Fault{FaultKind::PowerDerate, kAnyServer, 1.0}),
        FatalError);
}

TEST(FaultPlan, RejectsBadCrashProcess)
{
    fault::CrashProcess process;
    process.meanTimeBetweenCrashes = 0.0;
    EXPECT_THROW(FaultPlan().withCrashProcess(process), FatalError);

    process = fault::CrashProcess();
    process.meanRepair = 0.0;
    EXPECT_THROW(FaultPlan().withCrashProcess(process), FatalError);

    process = fault::CrashProcess();
    process.repairCv = 0.0; // lognormalMeanCv needs a positive CV.
    EXPECT_THROW(FaultPlan().withCrashProcess(process), FatalError);

    process = fault::CrashProcess();
    process.maxConcurrentDown = 0;
    EXPECT_THROW(FaultPlan().withCrashProcess(process), FatalError);
}

TEST(FaultPlan, EmptinessAndChaining)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());

    plan.at(1.0, Fault{FaultKind::ServerCrash, 0})
        .at(2.0, Fault{FaultKind::ServerRepair, 0});
    EXPECT_FALSE(plan.empty());
    ASSERT_EQ(plan.scripted().size(), 2u);
    EXPECT_EQ(plan.scripted()[0].second.kind, FaultKind::ServerCrash);
    EXPECT_EQ(plan.scripted()[1].second.kind, FaultKind::ServerRepair);

    FaultPlan stochastic;
    stochastic.withCrashProcess(fault::CrashProcess());
    EXPECT_FALSE(stochastic.empty());
    EXPECT_TRUE(stochastic.crashProcess().enabled);
}

// --- Scripted faults through the cluster ---------------------------------

TEST(FaultInjector, ScriptedCrashAndRepair)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(7), {});
    cluster.addServer(3.4);
    cluster.addServer(3.4);

    FaultInjector injector(sim, util::Rng(8));
    injector.attachCluster(cluster);
    injector.start(FaultPlan()
                       .at(1.0, Fault{FaultKind::ServerCrash, 0})
                       .at(2.0, Fault{FaultKind::ServerRepair, 0}));

    bool down_midway = false;
    sim.at(1.5, [&] {
        down_midway = cluster.isCrashed(0) && cluster.activeServers() == 1;
        EXPECT_EQ(injector.serversDown(), 1u);
    });
    sim.runUntil(3.0);

    EXPECT_TRUE(down_midway);
    EXPECT_FALSE(cluster.isCrashed(0));
    EXPECT_EQ(cluster.activeServers(), 2u);
    EXPECT_EQ(injector.serversDown(), 0u);
    ASSERT_EQ(injector.timeline().size(), 2u);
    EXPECT_DOUBLE_EQ(injector.timeline()[0].time, 1.0);
    EXPECT_EQ(injector.timeline()[0].kind, FaultKind::ServerCrash);
    EXPECT_EQ(injector.timeline()[0].target, 0u);
    EXPECT_DOUBLE_EQ(injector.timeline()[1].time, 2.0);
    EXPECT_EQ(injector.timeline()[1].kind, FaultKind::ServerRepair);
}

TEST(FaultInjector, AnyServerPicksAnActiveVictimAndRepairsFifo)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(9), {});
    for (int i = 0; i < 3; ++i)
        cluster.addServer(3.4);

    FaultInjector injector(sim, util::Rng(10));
    injector.attachCluster(cluster);
    injector.start(FaultPlan()
                       .at(1.0, Fault{FaultKind::ServerCrash, 0})
                       .at(2.0, Fault{FaultKind::ServerCrash, 1})
                       .at(3.0, Fault{FaultKind::ServerRepair}));

    sim.at(3.5, [&] {
        // Repairs with no target are FIFO: the first crash heals first.
        EXPECT_FALSE(cluster.isCrashed(0));
        EXPECT_TRUE(cluster.isCrashed(1));
    });
    sim.runUntil(4.0);

    // A random crash on the one-survivor fleet still finds a victim.
    injector.inject(Fault{FaultKind::ServerCrash});
    EXPECT_EQ(cluster.crashedServers(), 2u);
}

TEST(FaultInjector, FaultsWithoutAttachedSubsystemsAreFatal)
{
    sim::Simulation sim;
    FaultInjector injector(sim, util::Rng(11));
    EXPECT_THROW(injector.inject(Fault{FaultKind::ServerCrash, 0}),
                 FatalError);
    EXPECT_THROW(
        injector.inject(Fault{FaultKind::CoolingDegrade, kAnyServer, 0.5}),
        FatalError);
    EXPECT_THROW(
        injector.inject(Fault{FaultKind::PowerDerate, kAnyServer, 0.5}),
        FatalError);

    injector.start(FaultPlan());
    EXPECT_THROW(injector.start(FaultPlan()), FatalError);
}

TEST(FaultInjector, StopCancelsPendingFaults)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(12), {});
    cluster.addServer(3.4);

    FaultInjector injector(sim, util::Rng(13));
    injector.attachCluster(cluster);
    injector.start(FaultPlan().at(1.0, Fault{FaultKind::ServerCrash, 0}));
    injector.stop();
    sim.runUntil(2.0);

    EXPECT_TRUE(injector.timeline().empty());
    EXPECT_FALSE(cluster.isCrashed(0));
}

// --- Stochastic crash process --------------------------------------------

namespace {

std::vector<fault::InjectedFault>
runCrashProcess(std::uint64_t seed)
{
    sim::Simulation sim;
    util::Rng rng(seed);
    workload::QueueingCluster cluster(sim, rng.child(), {});
    for (int i = 0; i < 4; ++i)
        cluster.addServer(3.4);

    fault::CrashProcess process;
    process.meanTimeBetweenCrashes = 3.0;
    process.meanRepair = 2.0;
    process.repairCv = 1.0;
    process.maxConcurrentDown = 2;

    FaultInjector injector(sim, rng.child());
    injector.attachCluster(cluster);
    injector.start(FaultPlan().withCrashProcess(process));

    sim.every(0.5, [&] {
        EXPECT_LE(injector.serversDown(), process.maxConcurrentDown);
    });
    sim.runUntil(60.0);
    return injector.timeline();
}

} // namespace

TEST(FaultInjector, CrashProcessIsSeededAndBounded)
{
    const auto a = runCrashProcess(21);
    const auto b = runCrashProcess(21);
    const auto c = runCrashProcess(22);

    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
    }
    // A different seed produces a different fault sequence.
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].time != c[i].time || a[i].target != c[i].target;
    EXPECT_TRUE(differs);
}

// --- Cooling faults ------------------------------------------------------

TEST(FaultInjector, CoolingDegradeDeratesTheFrequencyCeiling)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(31), {});
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    autoscale::AutoScalerConfig cfg;
    cfg.maxFrequency = 4.1;
    autoscale::AutoScaler scaler(sim, cluster, cfg);

    // Linear toy power model (100 W per GHz per server): a full tank
    // absorbs 760 W per server (well above 4.1 GHz's 410 W); at half
    // fluid each of the two servers gets 380 W, i.e. exactly 3.8 GHz.
    thermal::ImmersionTank tank("t", thermal::hfe7000(), 2, 1520.0);
    FaultInjector injector(sim, util::Rng(32));
    injector.attachCluster(cluster);
    injector.attachAutoScaler(scaler);
    injector.attachTank(tank, [](GHz f) { return 100.0 * f; });

    injector.inject(Fault{FaultKind::CoolingDegrade, kAnyServer, 0.5});
    EXPECT_DOUBLE_EQ(tank.fluidLevel(), 0.5);
    EXPECT_DOUBLE_EQ(tank.effectiveCondenserCapacity(), 760.0);
    EXPECT_NEAR(scaler.frequencyCeiling(), 3.8, 1e-6);

    injector.inject(Fault{FaultKind::CoolingRestore});
    EXPECT_DOUBLE_EQ(tank.fluidLevel(), 1.0);
    EXPECT_DOUBLE_EQ(scaler.frequencyCeiling(), cfg.maxFrequency);

    // A loss so deep even the base clock does not fit still floors the
    // ceiling at the base frequency rather than below it.
    injector.inject(Fault{FaultKind::CoolingDegrade, kAnyServer, 0.1});
    EXPECT_DOUBLE_EQ(scaler.frequencyCeiling(), cfg.baseFrequency);

    ASSERT_EQ(injector.timeline().size(), 3u);
    EXPECT_EQ(injector.timeline().front().kind, FaultKind::CoolingDegrade);
    EXPECT_DOUBLE_EQ(injector.timeline().front().magnitude, 0.5);
}

TEST(FaultInjector, FrequencyCeilingClampsTheFleet)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(33), {});
    cluster.addServer(4.1);
    autoscale::AutoScalerConfig cfg;
    autoscale::AutoScaler scaler(sim, cluster, cfg);

    EXPECT_THROW(scaler.setFrequencyCeiling(3.0), FatalError); // < base.
    scaler.setFrequencyCeiling(5.0); // Clamped to the configured max.
    EXPECT_DOUBLE_EQ(scaler.frequencyCeiling(), cfg.maxFrequency);
}

// --- Power-feed faults ---------------------------------------------------

TEST(FaultInjector, PowerDerateBrownsOutRecoverably)
{
    sim::Simulation sim;
    power::PowerBudget feed(1000.0);
    FaultInjector injector(sim, util::Rng(41));
    injector.attachPowerBudget(feed);

    const std::vector<power::PowerConsumer> consumers{
        {"a", 300.0, 300.0, 0}, {"b", 300.0, 300.0, 0}};
    power::AllocScratch scratch;

    injector.inject(Fault{FaultKind::PowerDerate, kAnyServer, 0.4});
    EXPECT_DOUBLE_EQ(feed.capacity(), 400.0);
    // Even the floors (600 W) breach the derated feed: a recoverable
    // brownout scales every minimum uniformly to fit.
    feed.allocate(consumers, scratch, true);
    EXPECT_EQ(feed.brownouts(), 1u);
    EXPECT_DOUBLE_EQ(scratch.granted[0], 200.0);
    EXPECT_DOUBLE_EQ(scratch.granted[1], 200.0);
    EXPECT_TRUE(scratch.capped[0]);
    EXPECT_TRUE(scratch.capped[1]);

    injector.inject(Fault{FaultKind::PowerRestore});
    EXPECT_DOUBLE_EQ(feed.capacity(), 1000.0);
    feed.allocate(consumers, scratch, true);
    EXPECT_EQ(feed.brownouts(), 1u); // Restored feed fits: no new event.
    EXPECT_DOUBLE_EQ(scratch.granted[0], 300.0);
    EXPECT_FALSE(scratch.capped[0]);
}

// --- Invariant checker ---------------------------------------------------

TEST(InvariantChecker, CountsChecksAndRecordsViolations)
{
    sim::Simulation sim;
    InvariantChecker checker(sim);
    checker.addCheck("always", [] { return true; });
    checker.addCheck("never", [] { return false; });
    EXPECT_THROW(checker.addCheck("empty", {}), FatalError);

    checker.evaluate();
    EXPECT_EQ(checker.checksRun(), 2u);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].check, "never");

    checker.start(1.0);
    sim.runUntil(3.5);
    checker.stop();
    EXPECT_GT(checker.checksRun(), 2u);
    EXPECT_GT(checker.violations().size(), 1u);
}

TEST(InvariantChecker, WatchTankDetectsAnOverloadedCondenser)
{
    sim::Simulation sim;
    thermal::ImmersionTank tank("t", thermal::hfe7000(), 1, 100.0);
    InvariantChecker checker(sim);
    checker.watchTank(tank);

    tank.setHeatLoad(0, 90.0);
    checker.evaluate();
    EXPECT_TRUE(checker.violations().empty());

    tank.setFluidLevel(0.5); // 90 W load vs 50 W effective capacity.
    checker.evaluate();
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].check, "tank.condenser_keeps_up");
}

TEST(InvariantChecker, WatchClusterHoldsThroughCrashAndRepair)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(51), {});
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(300.0);

    InvariantChecker checker(sim);
    checker.watchCluster(cluster);
    checker.start(0.5);

    FaultInjector injector(sim, util::Rng(52));
    injector.attachCluster(cluster);
    injector.start(FaultPlan()
                       .at(2.0, Fault{FaultKind::ServerCrash, 1})
                       .at(4.0, Fault{FaultKind::ServerRepair, 1}));
    sim.runUntil(6.0);
    cluster.setArrivalRate(0.0);

    EXPECT_GT(checker.checksRun(), 0u);
    EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantChecker, WatchFleetAggregatorReadsThePublishedSample)
{
    sim::Simulation sim;
    obs::FleetAggregator::Config cfg;
    cfg.record = false;
    obs::FleetAggregator agg(cfg);
    InvariantChecker checker(sim);
    checker.watchFleetAggregator(agg, /*tj_max=*/100.0);

    // Empty fleet (no observe yet): both checks hold vacuously.
    checker.evaluate();
    EXPECT_TRUE(checker.violations().empty());

    // A cool fleet holds; snapshot() is the mutex-published safe point,
    // so the checks stay valid against a sharded publisher.
    std::vector<double> tj = {60.0, 72.5, 80.0};
    std::vector<double> power = {300.0, 420.0, 510.0};
    obs::FleetView view;
    view.count = tj.size();
    view.tj = tj.data();
    view.totalPower = power.data();
    agg.observe(0.0, view, 60.0);
    checker.evaluate();
    EXPECT_TRUE(checker.violations().empty());

    // Push one junction over the limit: exactly one check fires.
    tj[1] = 112.0;
    agg.observe(60.0, view, 60.0);
    checker.evaluate();
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].check, "fleet.junction_below_max");
}

// --- The capacity-crisis experiment --------------------------------------

namespace {

fault::CrisisParams
miniCrisis()
{
    // A deliberately small instance (seconds of wall time): three
    // servers at ~63% utilization, one crash, short windows.
    fault::CrisisParams params;
    params.fleetSize = 3;
    params.qps = 1500.0;
    params.serviceMean = 5e-3;
    params.warmup = 5.0;
    params.crisisStart = 20.0;
    params.failFraction = 0.34;
    params.repairAfter = 20.0;
    params.horizon = 50.0;
    return params;
}

} // namespace

TEST(CrisisExperiment, ValidatesParameters)
{
    fault::CrisisParams params = miniCrisis();
    params.fleetSize = 1;
    EXPECT_THROW(
        fault::runCrisisExperiment(autoscale::Policy::Baseline, params),
        FatalError);

    params = miniCrisis();
    params.failFraction = 1.0;
    EXPECT_THROW(
        fault::runCrisisExperiment(autoscale::Policy::Baseline, params),
        FatalError);

    params = miniCrisis();
    params.crisisStart = params.warmup;
    EXPECT_THROW(
        fault::runCrisisExperiment(autoscale::Policy::Baseline, params),
        FatalError);

    params = miniCrisis();
    params.horizon = params.crisisStart;
    EXPECT_THROW(
        fault::runCrisisExperiment(autoscale::Policy::Baseline, params),
        FatalError);
}

TEST(CrisisExperiment, IsDeterministicForASeed)
{
    const auto a =
        fault::runCrisisExperiment(autoscale::Policy::OcA, miniCrisis());
    const auto b =
        fault::runCrisisExperiment(autoscale::Policy::OcA, miniCrisis());

    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.healthyP99, b.healthyP99);
    EXPECT_DOUBLE_EQ(a.crisisP99, b.crisisP99);
    EXPECT_DOUBLE_EQ(a.recoverySeconds, b.recoverySeconds);
    EXPECT_EQ(a.scaleOuts, b.scaleOuts);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.faults[i].time, b.faults[i].time);
        EXPECT_EQ(a.faults[i].target, b.faults[i].target);
    }
    EXPECT_EQ(a.serversCrashed, 1u);
    EXPECT_GT(a.invariantChecks, 0u);
    EXPECT_EQ(a.invariantViolations, 0u);
}

TEST(CrisisExperiment, EmptyPlanLeavesARunUntouched)
{
    // An armed injector with an empty plan must not perturb the
    // workload trajectory at all (it draws nothing from its Rng and
    // schedules no events).
    const auto run = [](bool with_injector) {
        sim::Simulation sim;
        util::Rng rng(77);
        workload::QueueingCluster cluster(sim, rng.child(), {});
        cluster.addServer(3.4);
        cluster.addServer(3.4);

        FaultInjector injector(sim, rng.child());
        if (with_injector) {
            injector.attachCluster(cluster);
            injector.start(FaultPlan());
        }
        cluster.setArrivalRate(800.0);
        sim.runUntil(20.0);
        cluster.setArrivalRate(0.0);
        return std::make_pair(cluster.completed(),
                              cluster.latencies().p99());
    };

    const auto bare = run(false);
    const auto armed = run(true);
    EXPECT_EQ(bare.first, armed.first);
    EXPECT_DOUBLE_EQ(bare.second, armed.second);
}

} // namespace
} // namespace imsim
