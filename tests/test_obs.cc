/**
 * @file
 * Tests for the observability layer: metric registry semantics, the
 * telemetry sampler's clock alignment, Chrome-trace JSON emission
 * (validated by parse-back), the leveled Logger, the disabled-path
 * overhead contract, and serial-vs-parallel determinism of the merged
 * per-point telemetry (run under `ctest -L tsan` with
 * IMSIM_SANITIZE=thread to check the capture/merge path for races).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "autoscale/experiment.hh"
#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "sim/simulation.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser for trace parse-back: validates syntax and counts
// the records inside "traceEvents". Accepts exactly the subset the
// tracer emits (objects, arrays, strings, numbers).
// ---------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    /** Parse the whole document; EXPECT-fails on any syntax error. */
    bool
    parseDocument()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos == s.size();
    }

    std::size_t arrayItems(const std::string &key) const
    {
        const auto it = arrayCounts.find(key);
        return it == arrayCounts.end() ? 0 : it->second;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    parseValue()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray("");
          case '"':
            return parseString(nullptr);
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return parseNumber();
        }
    }

    bool
    literal(const std::string &word)
    {
        if (s.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (s[pos] != '"')
            return false;
        ++pos;
        std::string value;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
            }
            value.push_back(s[pos]);
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos; // Closing quote.
        if (out)
            *out = value;
        return true;
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        bool digits = false;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '-' || s[pos] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(s[pos])))
                digits = true;
            ++pos;
        }
        return digits && pos > start;
    }

    bool
    parseArray(const std::string &key)
    {
        if (s[pos] != '[')
            return false;
        ++pos;
        std::size_t items = 0;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            arrayCounts[key] = 0;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            ++items;
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                arrayCounts[key] = items;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject()
    {
        if (s[pos] != '{')
            return false;
        ++pos;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == '[') {
                if (!parseArray(key))
                    return false;
            } else if (!parseValue()) {
                return false;
            }
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    const std::string s; // By value: callers pass temporaries.
    std::size_t pos = 0;
    std::map<std::string, std::size_t> arrayCounts;
};

// ---------------------------------------------------------------------
// MetricRegistry semantics.
// ---------------------------------------------------------------------

TEST(MetricRegistry, FindOrCreateReturnsStableReferences)
{
    obs::MetricRegistry registry;
    obs::Counter &a = registry.counter("events");
    a.inc(3);
    // Interleave creations: references must stay valid.
    registry.counter("other");
    registry.gauge("g");
    registry.histogram("h");
    obs::Counter &b = registry.counter("events");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(registry.size(), 4u);
}

TEST(MetricRegistry, GaugeProviderPollsLiveState)
{
    obs::MetricRegistry registry;
    double model = 1.0;
    registry.registerGauge("freq", [&model] { return model; });
    EXPECT_DOUBLE_EQ(registry.gauge("freq").value(), 1.0);
    model = 4.1;
    EXPECT_DOUBLE_EQ(registry.gauge("freq").value(), 4.1);
    // set() overrides and detaches the provider.
    registry.gauge("freq").set(2.0);
    model = 9.9;
    EXPECT_DOUBLE_EQ(registry.gauge("freq").value(), 2.0);
}

TEST(MetricRegistry, SnapshotFlattensInRegistrationOrder)
{
    obs::MetricRegistry registry;
    registry.counter("c1").inc(2);
    registry.gauge("g1").set(5.0);
    registry.histogram("h1").observe(1.0);
    registry.histogram("h1").observe(3.0);
    const auto snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 2u + 5u); // c1, g1, h1.{count,mean,p50,p95,p99}
    EXPECT_EQ(snap[0].first, "c1");
    EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
    EXPECT_EQ(snap[1].first, "g1");
    EXPECT_DOUBLE_EQ(snap[1].second, 5.0);
    EXPECT_EQ(snap[2].first, "h1.count");
    EXPECT_DOUBLE_EQ(snap[2].second, 2.0);
    EXPECT_EQ(snap[3].first, "h1.mean");
    EXPECT_DOUBLE_EQ(snap[3].second, 2.0);
}

TEST(MetricRegistry, MergeSumsCountersAndUnionsHistograms)
{
    obs::MetricRegistry a;
    a.counter("n").inc(2);
    a.histogram("lat").observe(1.0);
    a.gauge("last").set(1.0);

    obs::MetricRegistry b;
    b.counter("n").inc(5);
    b.counter("only_b").inc(1);
    b.histogram("lat").observe(3.0);
    b.gauge("last").set(2.0);

    a.merge(b);
    EXPECT_EQ(a.counter("n").value(), 7u);
    EXPECT_EQ(a.counter("only_b").value(), 1u);
    EXPECT_EQ(a.histogram("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(a.histogram("lat").mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.gauge("last").value(), 2.0); // Last merged wins.
}

// ---------------------------------------------------------------------
// TimeSeries / TelemetryMerger.
// ---------------------------------------------------------------------

TEST(TimeSeries, CsvHasHeaderAndRows)
{
    obs::TimeSeries series({"a", "b"});
    series.append(0.0, {1.0, 2.0});
    series.append(60.0, {3.0, 4.0});
    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_EQ(csv.str(), "t,a,b\n0,1,2\n60,3,4\n");
}

TEST(TimeSeries, AppendWithWrongWidthIsFatal)
{
    obs::TimeSeries series({"a", "b"});
    EXPECT_THROW(series.append(0.0, {1.0}), FatalError);
}

TEST(TelemetryMerger, WritesPointsInIndexOrderRegardlessOfAddOrder)
{
    obs::TimeSeries first({"v"});
    first.append(0.0, {1.0});
    obs::TimeSeries second({"v"});
    second.append(0.0, {2.0});

    obs::TelemetryMerger merger(2);
    merger.add(1, "later", second); // Completion order reversed.
    merger.add(0, "earlier", first);
    EXPECT_EQ(merger.filledCount(), 2u);

    std::ostringstream csv;
    merger.writeCsv(csv);
    EXPECT_EQ(csv.str(), "point,t,v\nearlier,0,1\nlater,0,2\n");
}

TEST(TelemetryMerger, DuplicateIndexIsFatal)
{
    obs::TimeSeries series({"v"});
    obs::TelemetryMerger merger(1);
    merger.add(0, "p", series);
    EXPECT_THROW(merger.add(0, "p", series), FatalError);
}

// ---------------------------------------------------------------------
// TelemetrySampler clock alignment.
// ---------------------------------------------------------------------

TEST(TelemetrySampler, SamplesAtStartAndEveryPeriodNeverPastHorizon)
{
    sim::Simulation sim;
    obs::MetricRegistry registry;
    registry.registerGauge("clock", [&sim] { return sim.now(); });

    obs::TelemetrySampler sampler(sim, registry, 10.0);
    sampler.start();
    sim.runUntil(35.0);
    sampler.stop();

    const obs::TimeSeries &series = sampler.series();
    ASSERT_EQ(series.rows(), 4u); // t = 0, 10, 20, 30; none past 35.
    for (std::size_t i = 0; i < series.rows(); ++i) {
        EXPECT_DOUBLE_EQ(series.time(i), 10.0 * static_cast<double>(i));
        EXPECT_DOUBLE_EQ(series.row(i)[0], series.time(i));
    }
}

TEST(TelemetrySampler, HorizonBoundarySampleFires)
{
    sim::Simulation sim;
    obs::MetricRegistry registry;
    registry.registerGauge("one", [] { return 1.0; });
    obs::TelemetrySampler sampler(sim, registry, 10.0);
    sampler.start();
    sim.runUntil(20.0); // Samples at 0, 10, and exactly 20.
    EXPECT_EQ(sampler.series().rows(), 3u);
}

TEST(TelemetrySampler, CountersAppearAfterGauges)
{
    sim::Simulation sim;
    obs::MetricRegistry registry;
    obs::Counter &events = registry.counter("events");
    registry.registerGauge("g", [] { return 7.0; });
    obs::TelemetrySampler sampler(sim, registry, 5.0);
    sampler.start();
    events.inc(2);
    sim.runUntil(5.0);
    const obs::TimeSeries &series = sampler.series();
    ASSERT_EQ(series.columns().size(), 2u);
    EXPECT_EQ(series.columns()[0], "g");
    EXPECT_EQ(series.columns()[1], "events");
    ASSERT_EQ(series.rows(), 2u);
    EXPECT_DOUBLE_EQ(series.row(0)[1], 0.0);
    EXPECT_DOUBLE_EQ(series.row(1)[1], 2.0);
}

// ---------------------------------------------------------------------
// EventTracer: emission, JSON parse-back, append/merge.
// ---------------------------------------------------------------------

TEST(EventTracer, DisabledTracerCollectsNothing)
{
    obs::EventTracer tracer;
    tracer.instant("a", "cat");
    tracer.counter("v", 1.0);
    tracer.complete("x", "cat", 0.0, 1.0);
    EXPECT_EQ(tracer.size(), 0u);
    {
        obs::TraceScope scope(tracer, "scoped");
    }
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(EventTracer, JsonParsesBackWithAllEvents)
{
    obs::EventTracer tracer;
    Seconds t = 1.5;
    tracer.enable([&t] { return t; });
    tracer.nameTrack(0, "point Baseline");
    tracer.instant("scale_out", "autoscale");
    tracer.counter("vms", 3.0);
    tracer.complete("decide", "autoscale", 1.5, 1.75);
    {
        obs::TraceScope scope(tracer, "scoped", "test");
        t = 2.0;
    }
    ASSERT_EQ(tracer.size(), 5u);

    const std::string json = tracer.toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parseDocument()) << json;
    EXPECT_EQ(checker.arrayItems("traceEvents"), 5u);
    // Spot-check the Chrome trace_event dialect.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    // Virtual-time stamps are microseconds: 1.5 s -> 1500000.
    EXPECT_NE(json.find("1500000"), std::string::npos);
}

TEST(EventTracer, AppendRestampsTrackAndPreservesOrder)
{
    obs::EventTracer point;
    Seconds t = 0.0;
    point.enable([&t] { return t; });
    point.instant("a", "cat");
    t = 1.0;
    point.instant("b", "cat");

    obs::EventTracer merged; // Stays disabled; append still works.
    merged.append(point, 7);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.events()[0].name, "a");
    EXPECT_EQ(merged.events()[0].tid, 7u);
    EXPECT_EQ(merged.events()[1].tid, 7u);
}

TEST(KernelTracer, CapturesKernelEventsOnVirtualTimeline)
{
    sim::Simulation sim;
    obs::EventTracer tracer;
    {
        obs::KernelTracer kernel_tracer(tracer, sim);
        sim.at(1.0, [] {});
        sim.at(2.0, [] {});
        const auto doomed = sim.at(3.0, [] {});
        sim.cancel(doomed);
        sim.run();
    }
    EXPECT_EQ(sim.hooksAttached(), nullptr); // Detached on destruction.
    ASSERT_GT(tracer.size(), 0u);
    std::size_t fires = 0;
    std::size_t cancels = 0;
    for (const auto &ev : tracer.events()) {
        if (ev.name == "fire")
            ++fires;
        if (ev.name == "cancel")
            ++cancels;
    }
    EXPECT_EQ(fires, 2u); // The cancelled event never fires.
    EXPECT_EQ(cancels, 1u);
    JsonChecker checker(tracer.toJson());
    EXPECT_TRUE(checker.parseDocument());
}

// ---------------------------------------------------------------------
// Disabled-path overhead contract: attaching hooks with tracing off
// must not change the kernel's observable behaviour.
// ---------------------------------------------------------------------

TEST(ObsOverhead, DisabledHooksCauseNoEventsExecutedDrift)
{
    const auto run_workload = [](sim::Simulation &sim) {
        int fired = 0;
        for (int i = 0; i < 500; ++i)
            sim.at(static_cast<double>(i % 50), [&fired] { ++fired; });
        const auto id = sim.every(7.0, [] {});
        sim.runUntil(49.0);
        sim.cancel(id);
        return fired;
    };

    sim::Simulation bare;
    const int bare_fired = run_workload(bare);

    sim::Simulation hooked;
    sim::KernelHooks null_hooks; // Default no-op callbacks.
    hooked.setHooks(&null_hooks);
    const int hooked_fired = run_workload(hooked);

    EXPECT_EQ(bare_fired, hooked_fired);
    EXPECT_EQ(bare.eventsExecuted(), hooked.eventsExecuted());
    EXPECT_EQ(bare.pendingEvents(), hooked.pendingEvents());
    EXPECT_DOUBLE_EQ(bare.now(), hooked.now());
}

TEST(ObsOverhead, ExperimentWithoutCaptureMatchesSeedBaseline)
{
    // The obs pointer defaults to null: the run must not differ from
    // one where the obs layer does not exist at all.
    autoscale::ExperimentParams params;
    params.stepDuration = 30.0;
    const auto a =
        autoscale::runCustomExperiment(autoscale::Policy::OcA,
                                       {1000.0, 2000.0}, 1, params);
    const auto b =
        autoscale::runCustomExperiment(autoscale::Policy::OcA,
                                       {1000.0, 2000.0}, 1, params);
    EXPECT_DOUBLE_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.trace.size(), b.trace.size());
}

// ---------------------------------------------------------------------
// Logger.
// ---------------------------------------------------------------------

class LoggerTest : public testing::Test
{
  protected:
    void
    TearDown() override
    {
        obs::Logger::setDedupLimit(0); // Flushes, then disables.
        obs::Logger::clearSinks();
        util::setLogLevel(util::LogLevel::Warn); // Process default.
    }
};

TEST_F(LoggerTest, LevelThresholdGatesRecords)
{
    std::vector<std::string> seen;
    obs::Logger::addSink([&seen](util::LogLevel, const std::string &,
                                 const std::string &msg) {
        seen.push_back(msg);
    });
    obs::Logger log("mod");

    util::setLogLevel(util::LogLevel::Warn);
    log.debug("hidden");
    log.info("hidden too");
    log.warn("shown");
    util::setLogLevel(util::LogLevel::Debug);
    log.debug("now visible");
    log.trace("still hidden");
    util::setLogLevel(util::LogLevel::Off);
    log.warn("muted");

    EXPECT_EQ(seen, (std::vector<std::string>{"shown", "now visible"}));
}

TEST_F(LoggerTest, SinkReceivesLoggerNameAndLevel)
{
    util::LogLevel got_level = util::LogLevel::Off;
    std::string got_logger;
    obs::Logger::addSink([&](util::LogLevel level, const std::string &name,
                             const std::string &) {
        got_level = level;
        got_logger = name;
    });
    obs::Logger("autoscaler").warn("msg");
    EXPECT_EQ(got_level, util::LogLevel::Warn);
    EXPECT_EQ(got_logger, "autoscaler");
}

TEST_F(LoggerTest, SetVerboseRoutesThroughSharedThreshold)
{
    util::setVerbose(true);
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Info));
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Debug));
    obs::Logger log;
    EXPECT_TRUE(log.enabled(util::LogLevel::Info));

    util::setVerbose(false);
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Info));
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Warn));
}

TEST_F(LoggerTest, CliFlagsSetTheSharedThreshold)
{
    const char *argv[] = {"bench", "--log-level", "debug"};
    const util::Cli cli(3, argv);
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Debug));
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Trace));

    const char *argv_verbose[] = {"bench", "--verbose"};
    util::setLogLevel(util::LogLevel::Warn);
    const util::Cli verbose(2, argv_verbose);
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Info));
}

TEST_F(LoggerTest, ParseLogLevelRejectsUnknownNames)
{
    EXPECT_EQ(util::parseLogLevel("info"), util::LogLevel::Info);
    EXPECT_EQ(util::parseLogLevel("warn"), util::LogLevel::Warn);
    EXPECT_THROW(util::parseLogLevel("loud"), FatalError);
}

// ---------------------------------------------------------------------
// End-to-end: per-point capture under the experiment engine, merged in
// point order — byte-identical serial vs parallel (the bench path).
// ---------------------------------------------------------------------

struct MergedObs
{
    std::string telemetryCsv;
    std::string traceJson;
    std::vector<std::pair<std::string, double>> metrics;
};

MergedObs
runSweepWithCapture(std::size_t jobs)
{
    autoscale::ExperimentParams params;
    params.stepDuration = 30.0;
    const std::vector<autoscale::Policy> points{
        autoscale::Policy::Baseline, autoscale::Policy::OcE,
        autoscale::Policy::OcA,      autoscale::Policy::Baseline,
        autoscale::Policy::OcA,      autoscale::Policy::OcE,
        autoscale::Policy::OcA,      autoscale::Policy::Baseline};

    std::vector<autoscale::ObsCapture> captures(points.size());
    for (auto &capture : captures)
        capture.telemetryPeriod = 10.0;

    const exp::SweepRunner runner({jobs, 42});
    runner.map<int>(points.size(), [&](std::size_t i, util::Rng &) {
        autoscale::ExperimentParams point_params = params;
        point_params.obs = &captures[i];
        autoscale::runCustomExperiment(points[i], {1000.0, 2500.0}, 1,
                                       point_params);
        return 0;
    });

    obs::EventTracer merged_trace;
    obs::TelemetryMerger telemetry(captures.size());
    obs::MetricRegistry merged_metrics;
    for (std::size_t i = 0; i < captures.size(); ++i) {
        const std::string label =
            autoscale::policyName(points[i]) + "#" + std::to_string(i);
        merged_trace.nameTrack(static_cast<std::uint32_t>(i), label);
        merged_trace.append(captures[i].tracer,
                            static_cast<std::uint32_t>(i));
        telemetry.add(i, label, captures[i].telemetry);
        merged_metrics.merge(captures[i].registry);
    }

    MergedObs out;
    std::ostringstream csv;
    telemetry.writeCsv(csv);
    out.telemetryCsv = csv.str();
    out.traceJson = merged_trace.toJson();
    out.metrics = merged_metrics.snapshot();
    return out;
}

TEST(ObsDeterminism, MergedTelemetryIsByteIdenticalSerialVsParallel)
{
    const MergedObs serial = runSweepWithCapture(1);
    const MergedObs parallel = runSweepWithCapture(8);

    EXPECT_FALSE(serial.telemetryCsv.empty());
    EXPECT_EQ(serial.telemetryCsv, parallel.telemetryCsv);
    EXPECT_EQ(serial.traceJson, parallel.traceJson);
    ASSERT_EQ(serial.metrics.size(), parallel.metrics.size());
    for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
        EXPECT_EQ(serial.metrics[i].first, parallel.metrics[i].first);
        EXPECT_DOUBLE_EQ(serial.metrics[i].second,
                         parallel.metrics[i].second) << serial.metrics[i].first;
    }

    // The capture actually observed the run.
    JsonChecker checker(serial.traceJson);
    EXPECT_TRUE(checker.parseDocument());
    EXPECT_GT(checker.arrayItems("traceEvents"), 8u);
    EXPECT_NE(serial.telemetryCsv.find("autoscaler.vms"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// CLI glue (--trace / --telemetry).
// ---------------------------------------------------------------------

TEST(ObsCli, MaybeWriteTraceHonorsFlag)
{
    const std::string path = testing::TempDir() + "imsim_test_trace.json";
    const char *argv[] = {"bench", "--trace", path.c_str()};
    const util::Cli cli(3, argv);
    EXPECT_TRUE(obs::traceRequested(cli));

    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    tracer.instant("e", "cat");

    std::ostringstream note;
    obs::maybeWriteTrace(cli, tracer, note);
    EXPECT_NE(note.str().find(path), std::string::npos);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonChecker checker(buffer.str());
    EXPECT_TRUE(checker.parseDocument());
    EXPECT_EQ(checker.arrayItems("traceEvents"), 1u);
    std::remove(path.c_str());
}

TEST(ObsCli, NoFlagsWriteNothing)
{
    const char *argv[] = {"bench"};
    const util::Cli cli(1, argv);
    EXPECT_FALSE(obs::traceRequested(cli));
    EXPECT_FALSE(obs::telemetryRequested(cli));
    obs::EventTracer tracer;
    obs::TelemetryMerger merger(0);
    std::ostringstream os;
    obs::maybeWriteTrace(cli, tracer, os);
    obs::maybeWriteTelemetry(cli, merger, os);
    EXPECT_TRUE(os.str().empty());
}

// ---------------------------------------------------------------------
// TimeSeries export edge cases: empty, single sample, non-finite
// values, counter-track mirroring — each round-tripped through the CSV
// and JSON writers and their parsers.
// ---------------------------------------------------------------------

TEST(TimeSeriesRoundTrip, EmptySeriesKeepsColumns)
{
    obs::TimeSeries series({"a", "b"});
    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_EQ(csv.str(), "t,a,b\n");
    std::istringstream csv_in(csv.str());
    const obs::TimeSeries from_csv = obs::TimeSeries::parseCsv(csv_in);
    EXPECT_EQ(from_csv.columns(), series.columns());
    EXPECT_EQ(from_csv.rows(), 0u);

    std::ostringstream json;
    series.writeJson(json);
    const obs::TimeSeries from_json =
        obs::TimeSeries::parseJson(json.str());
    EXPECT_EQ(from_json.columns(), series.columns());
    EXPECT_EQ(from_json.rows(), 0u);
}

TEST(TimeSeriesRoundTrip, SingleSampleSurvivesBothFormats)
{
    obs::TimeSeries series({"v"});
    series.append(1.5, {42.125});
    std::ostringstream csv;
    series.writeCsv(csv);
    std::istringstream csv_in(csv.str());
    const obs::TimeSeries from_csv = obs::TimeSeries::parseCsv(csv_in);
    ASSERT_EQ(from_csv.rows(), 1u);
    EXPECT_DOUBLE_EQ(from_csv.time(0), 1.5);
    EXPECT_DOUBLE_EQ(from_csv.row(0)[0], 42.125);

    std::ostringstream json;
    series.writeJson(json);
    const obs::TimeSeries from_json =
        obs::TimeSeries::parseJson(json.str());
    ASSERT_EQ(from_json.rows(), 1u);
    EXPECT_DOUBLE_EQ(from_json.row(0)[0], 42.125);
}

TEST(TimeSeriesRoundTrip, NonFiniteGaugeValues)
{
    obs::TimeSeries series({"g"});
    series.append(0.0, {std::nan("")});
    series.append(1.0, {std::numeric_limits<double>::infinity()});
    series.append(2.0, {-std::numeric_limits<double>::infinity()});
    series.append(3.0, {7.0});

    // CSV spells non-finite values out ("nan"/"inf") and parses them
    // back exactly.
    std::ostringstream csv;
    series.writeCsv(csv);
    std::istringstream csv_in(csv.str());
    const obs::TimeSeries from_csv = obs::TimeSeries::parseCsv(csv_in);
    ASSERT_EQ(from_csv.rows(), 4u);
    EXPECT_TRUE(std::isnan(from_csv.row(0)[0]));
    EXPECT_TRUE(std::isinf(from_csv.row(1)[0]));
    EXPECT_GT(from_csv.row(1)[0], 0.0);
    EXPECT_TRUE(std::isinf(from_csv.row(2)[0]));
    EXPECT_LT(from_csv.row(2)[0], 0.0);
    EXPECT_DOUBLE_EQ(from_csv.row(3)[0], 7.0);

    // JSON has no non-finite literals: every such cell becomes null
    // (keeping the document valid) and parses back as NaN.
    std::ostringstream json;
    series.writeJson(json);
    EXPECT_NE(json.str().find("null"), std::string::npos);
    const obs::TimeSeries from_json =
        obs::TimeSeries::parseJson(json.str());
    ASSERT_EQ(from_json.rows(), 4u);
    EXPECT_TRUE(std::isnan(from_json.row(0)[0]));
    EXPECT_TRUE(std::isnan(from_json.row(1)[0]));
    EXPECT_TRUE(std::isnan(from_json.row(2)[0]));
    EXPECT_DOUBLE_EQ(from_json.row(3)[0], 7.0);
}

TEST(TimeSeriesRoundTrip, CounterTrackMirroring)
{
    // A sampler series mirrors counters into value columns after the
    // gauges; the cumulative track must survive both export formats.
    sim::Simulation sim;
    obs::MetricRegistry registry;
    obs::Counter &events = registry.counter("events");
    registry.registerGauge("g", [&sim] { return sim.now(); });
    obs::TelemetrySampler sampler(sim, registry, 5.0);
    sampler.start();
    events.inc(2);
    sim.at(4.0, [&events] { events.inc(3); });
    sim.runUntil(10.0);
    const obs::TimeSeries &series = sampler.series();
    ASSERT_EQ(series.rows(), 3u); // t = 0, 5, 10.

    std::ostringstream csv;
    series.writeCsv(csv);
    std::istringstream csv_in(csv.str());
    const obs::TimeSeries from_csv = obs::TimeSeries::parseCsv(csv_in);
    std::ostringstream json;
    series.writeJson(json);
    const obs::TimeSeries from_json =
        obs::TimeSeries::parseJson(json.str());
    for (const obs::TimeSeries *parsed : {&from_csv, &from_json}) {
        ASSERT_EQ(parsed->columns(), series.columns());
        ASSERT_EQ(parsed->rows(), 3u);
        EXPECT_DOUBLE_EQ(parsed->row(0)[1], 0.0); // Counter at start.
        EXPECT_DOUBLE_EQ(parsed->row(1)[1], 5.0); // 2 + 3 by t=5.
        EXPECT_DOUBLE_EQ(parsed->row(2)[1], 5.0); // Still cumulative.
    }
}

TEST(TimeSeriesRoundTrip, ParseCsvRejectsRaggedAndHeaderless)
{
    std::istringstream ragged("t,a\n0,1\n1\n");
    EXPECT_THROW(obs::TimeSeries::parseCsv(ragged), FatalError);
    std::istringstream headerless("x,a\n0,1\n");
    EXPECT_THROW(obs::TimeSeries::parseCsv(headerless), FatalError);
}

TEST(TelemetryCsv, MergedFileParsesBackPerPoint)
{
    obs::TimeSeries first({"v", "w"});
    first.append(0.0, {1.0, 2.0});
    first.append(1.0, {3.0, 4.0});
    obs::TimeSeries second({"v", "w"});
    second.append(0.0, {5.0, 6.0});
    obs::TelemetryMerger merger(2);
    merger.add(0, "alpha", first);
    merger.add(1, "beta", second);

    std::ostringstream csv;
    merger.writeCsv(csv);
    std::istringstream in(csv.str());
    const auto series = obs::parseTelemetryCsv(in);
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].label, "alpha");
    EXPECT_EQ(series[1].label, "beta");
    EXPECT_EQ(series[0].series.columns(),
              (std::vector<std::string>{"v", "w"}));
    ASSERT_EQ(series[0].series.rows(), 2u);
    EXPECT_DOUBLE_EQ(series[0].series.row(1)[1], 4.0);
    ASSERT_EQ(series[1].series.rows(), 1u);
    EXPECT_DOUBLE_EQ(series[1].series.row(0)[0], 5.0);
}

TEST(TelemetryCsv, ManifestCommentsAreSkipped)
{
    std::istringstream in("# git_sha: abc\n# seed: 1\n"
                          "point,t,v\np,0,9\n");
    const auto series = obs::parseTelemetryCsv(in);
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series[0].series.row(0)[0], 9.0);
}

// ---------------------------------------------------------------------
// Wall-clock profiler: nesting, self time, merge, disabled contract.
// ---------------------------------------------------------------------

TEST(Profiler, DisabledScopesRecordNothing)
{
    obs::Profiler::reset();
    obs::Profiler::setEnabled(false);
    {
        obs::ProfScope outer("test.disabled.outer");
        obs::ProfScope inner("test.disabled.inner");
    }
    EXPECT_TRUE(obs::Profiler::report().empty());
}

TEST(Profiler, NestedScopesAggregateByPath)
{
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        obs::ProfScope outer("test.outer");
        {
            obs::ProfScope inner("test.inner");
        }
        {
            obs::ProfScope inner("test.inner");
        }
    }
    obs::Profiler::setEnabled(false);
    const obs::ProfileReport report = obs::Profiler::report();
    obs::Profiler::reset();

    ASSERT_EQ(report.entries().size(), 2u); // Sorted by path.
    const obs::ProfileEntry &outer = report.entries()[0];
    const obs::ProfileEntry &inner = report.entries()[1];
    EXPECT_EQ(outer.path, "test.outer");
    EXPECT_EQ(inner.path, "test.outer/test.inner");
    EXPECT_EQ(outer.count, 3u);
    EXPECT_EQ(inner.count, 6u);
    // Self time excludes children; the child has no children of its
    // own, so its self time is its total.
    EXPECT_LE(outer.selfMs, outer.totalMs);
    EXPECT_DOUBLE_EQ(inner.selfMs, inner.totalMs);
    EXPECT_GE(outer.totalMs, inner.totalMs);
}

TEST(Profiler, ReportJsonRoundTripsAndMerges)
{
    obs::ProfileReport a;
    a.add({"x/y", 2, 3.0, 1.5});
    a.add({"x", 1, 5.0, 2.0});
    const std::string json = a.toJson("{\"git_sha\": \"abc\"}");
    EXPECT_NE(json.find("imsim.profile/1"), std::string::npos);
    EXPECT_NE(json.find("\"git_sha\": \"abc\""), std::string::npos);
    const obs::ProfileReport parsed = obs::ProfileReport::fromJson(json);
    ASSERT_EQ(parsed.entries().size(), 2u);
    EXPECT_EQ(parsed.entries()[0].path, "x"); // Sorted by path.
    EXPECT_EQ(parsed.entries()[1].count, 2u);
    EXPECT_DOUBLE_EQ(parsed.entries()[1].selfMs, 1.5);

    obs::ProfileReport b;
    b.add({"x", 4, 1.0, 0.5});
    b.add({"z", 1, 2.0, 2.0});
    obs::ProfileReport merged = parsed;
    merged.merge(b);
    ASSERT_EQ(merged.entries().size(), 3u);
    EXPECT_EQ(merged.entries()[0].path, "x");
    EXPECT_EQ(merged.entries()[0].count, 5u);
    EXPECT_DOUBLE_EQ(merged.entries()[0].totalMs, 6.0);
    EXPECT_EQ(merged.entries()[2].path, "z");
}

TEST(Profiler, SweepWorkersProfileWithoutRacing)
{
    // Concurrent scopes on pool threads touch only their own trees;
    // report() after the sweep joins merges them by path. Runs under
    // the tsan label.
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    exp::SweepRunner runner({4, 3});
    runner.parallelFor(16, [](std::size_t, util::Rng &rng) {
        obs::ProfScope scope("test.worker");
        double sum = 0.0;
        for (int i = 0; i < 100; ++i)
            sum += rng.uniform();
        if (sum < 0.0) // Defeat optimisation; never true.
            std::abort();
    });
    obs::Profiler::setEnabled(false);
    const obs::ProfileReport report = obs::Profiler::report();
    obs::Profiler::reset();
    std::uint64_t worker_count = 0;
    for (const auto &entry : report.entries())
        if (entry.path == "test.worker")
            worker_count += entry.count;
    EXPECT_EQ(worker_count, 16u);
}

// ---------------------------------------------------------------------
// Run manifest provenance.
// ---------------------------------------------------------------------

TEST(RunManifest, CaptureStampsProvenanceFields)
{
    const char *argv[] = {"bench", "--jobs", "4"};
    const util::Cli cli(3, argv);
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, 1234, 4);
    EXPECT_FALSE(manifest.get("git_sha").empty());
    EXPECT_FALSE(manifest.get("compiler").empty());
    EXPECT_EQ(manifest.get("seed"), "1234");
    EXPECT_EQ(manifest.get("jobs"), "4");
    EXPECT_NE(manifest.get("argv").find("--jobs 4"), std::string::npos);
    EXPECT_NE(manifest.get("started_at").find("T"), std::string::npos);

    const std::string json = manifest.toJsonObject();
    EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": \"1234\""), std::string::npos);

    std::ostringstream comments;
    manifest.writeCsvComments(comments);
    EXPECT_NE(comments.str().find("# seed: 1234\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Logger duplicate suppression (alert storms).
// ---------------------------------------------------------------------

TEST_F(LoggerTest, DedupSuppressesRepeatsAndReportsTheCount)
{
    std::vector<std::string> seen;
    obs::Logger::addSink([&seen](util::LogLevel, const std::string &,
                                 const std::string &msg) {
        seen.push_back(msg);
    });
    obs::Logger::setDedupLimit(2);
    obs::Logger log("storm");

    for (int i = 0; i < 5; ++i)
        log.warn("tank over temperature");
    // First two pass; repeats 3..5 are swallowed until a different
    // message flushes the summary ahead of itself.
    log.warn("feed brownout");
    EXPECT_EQ(seen,
              (std::vector<std::string>{
                  "tank over temperature", "tank over temperature",
                  "suppressed 3 duplicates of: tank over temperature",
                  "feed brownout"}));

    // An explicit flush reports mid-storm and restarts the window.
    seen.clear();
    for (int i = 0; i < 4; ++i)
        log.warn("tank over temperature");
    obs::Logger::flushDedup();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[2],
              "suppressed 2 duplicates of: tank over temperature");
    log.warn("tank over temperature"); // Fresh window: emitted again.
    EXPECT_EQ(seen.size(), 4u);
}

TEST_F(LoggerTest, DedupDistinguishesLoggerAndLevel)
{
    std::vector<std::string> seen;
    obs::Logger::addSink([&seen](util::LogLevel, const std::string &,
                                 const std::string &msg) {
        seen.push_back(msg);
    });
    obs::Logger::setDedupLimit(1);
    obs::Logger a("tank");
    obs::Logger b("feed");
    a.warn("hot");
    b.warn("hot"); // Different logger: a distinct record, not a repeat.
    a.warn("hot");
    EXPECT_EQ(seen,
              (std::vector<std::string>{"hot", "hot", "hot"}));
}

// ---------------------------------------------------------------------
// HistogramMetric non-finite guard (regression: a single NaN used to
// be able to poison every percentile of a metric).
// ---------------------------------------------------------------------

TEST(HistogramMetric, NonFiniteSamplesAreDivertedNotRecorded)
{
    obs::HistogramMetric histogram;
    for (int i = 1; i <= 100; ++i)
        histogram.observe(static_cast<double>(i));
    histogram.observe(std::numeric_limits<double>::quiet_NaN());
    histogram.observe(std::numeric_limits<double>::infinity());
    histogram.observe(-std::numeric_limits<double>::infinity());

    EXPECT_EQ(histogram.count(), 100u);
    EXPECT_EQ(histogram.dropped(), 3u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 50.5);
    EXPECT_TRUE(std::isfinite(histogram.percentile(50.0)));
    EXPECT_TRUE(std::isfinite(histogram.percentile(99.0)));

    // merge() carries the dropped count along with the samples.
    obs::HistogramMetric other;
    other.observe(std::numeric_limits<double>::quiet_NaN());
    other.observe(7.0);
    histogram.merge(other);
    EXPECT_EQ(histogram.count(), 101u);
    EXPECT_EQ(histogram.dropped(), 4u);
}

// ---------------------------------------------------------------------
// Schema stamps: every machine-readable export names its format so
// consumers (tools/imsim_report) can refuse unknown versions with a
// message instead of a crash.
// ---------------------------------------------------------------------

TEST(SchemaStamps, TimeSeriesJsonNamesItsSchema)
{
    obs::TimeSeries series({"a"});
    series.append(0.0, {1.0});
    std::ostringstream json;
    series.writeJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"imsim.timeseries/1\""),
              std::string::npos);
    // And the stamp survives the round trip.
    const obs::TimeSeries back = obs::TimeSeries::parseJson(json.str());
    EXPECT_EQ(back.rows(), 1u);
}

TEST(SchemaStamps, TraceJsonNamesItsSchema)
{
    obs::EventTracer tracer;
    Seconds t = 0.0;
    tracer.enable([&t] { return t; });
    tracer.instant("e", "cat");
    EXPECT_NE(tracer.toJson().find("\"schema\": \"imsim.trace/1\""),
              std::string::npos);
}

TEST(SchemaStamps, TelemetryCsvLeadsWithItsSchemaComment)
{
    const std::string path =
        testing::TempDir() + "imsim_test_schema_telemetry.csv";
    const char *argv[] = {"bench", "--telemetry", path.c_str()};
    const util::Cli cli(3, argv);
    obs::TelemetryMerger merger(1);
    obs::TimeSeries series({"x"});
    series.append(0.0, {1.0});
    merger.add(0, "p0", series);
    std::ostringstream note;
    obs::maybeWriteTelemetry(cli, merger, note);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_EQ(first_line,
              std::string("# schema: ") + obs::kTelemetrySchema);
    std::remove(path.c_str());
}

TEST(SchemaStamps, RunReportRefusesForeignSchemas)
{
    exp::RunReport report("stamped");
    const std::string json = report.toJson();
    const std::string stamp = "\"schema\": \"imsim.report/1\"";
    const auto at = json.find(stamp);
    ASSERT_NE(at, std::string::npos);

    // The round trip accepts its own stamp...
    EXPECT_EQ(exp::RunReport::fromJson(json).name(), "stamped");
    // ...and refuses a newer one with a FatalError (which the report
    // tool catches to degrade gracefully).
    std::string newer = json;
    newer.replace(at, stamp.size(), "\"schema\": \"imsim.report/9\"");
    EXPECT_THROW(exp::RunReport::fromJson(newer), FatalError);
}

} // namespace
} // namespace imsim
