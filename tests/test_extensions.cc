/**
 * @file
 * Unit tests for the extension modules: DVFS transition costs, the
 * synthetic-telemetry trace generator and opportunity analysis, the
 * live-migration model with the overclock-stop-gap policy, the
 * predictive scaler, and environmental accounting.
 */

#include <gtest/gtest.h>

#include "autoscale/predictive.hh"
#include "cluster/migration.hh"
#include "power/dvfs.hh"
#include "thermal/environment.hh"
#include "util/logging.hh"
#include "workload/trace.hh"

namespace imsim {
namespace {

// --- DVFS transitions ---------------------------------------------------------

TEST(Dvfs, TransitionsTakeTensOfMicroseconds)
{
    // The paper's premise: a frequency change costs tens of microseconds.
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    const auto up = dvfs.transition(3.4, 4.1);
    EXPECT_GT(up.latency, 1e-6);
    EXPECT_LT(up.latency, 1e-3);
    EXPECT_EQ(up.steps, 7);
}

TEST(Dvfs, DownTransitionsAreFasterThanUp)
{
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    const auto up = dvfs.transition(3.4, 4.1);
    const auto down = dvfs.transition(4.1, 3.4);
    EXPECT_LT(down.latency, up.latency);
}

TEST(Dvfs, NoOpTransitionIsFree)
{
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    const auto none = dvfs.transition(3.4, 3.4);
    EXPECT_EQ(none.steps, 0);
    EXPECT_DOUBLE_EQ(none.latency, 0.0);
    EXPECT_DOUBLE_EQ(none.energyJ, 0.0);
}

TEST(Dvfs, ScaleUpBeatsScaleOutByOrdersOfMagnitude)
{
    // Sec. V: 60 s scale-out vs tens-of-microseconds scale-up.
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    const double ratio = dvfs.scaleOutToScaleUpRatio(60.0, 3.4, 4.1);
    EXPECT_GT(ratio, 1e5);
}

TEST(Dvfs, GovernorOverheadIsNegligible)
{
    // A 3 s decision loop that changes frequency every tick loses a
    // vanishing fraction of time to the transitions themselves.
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    EXPECT_LT(dvfs.dutyCycleOverhead(3.0, 1.0), 1e-4);
}

TEST(Dvfs, InvalidInputsAreFatal)
{
    power::DvfsModel dvfs(power::VfCurve::xeonW3175x());
    EXPECT_THROW(dvfs.transition(0.0, 3.4), FatalError);
    EXPECT_THROW(dvfs.dutyCycleOverhead(0.0, 0.5), FatalError);
    EXPECT_THROW(dvfs.scaleOutToScaleUpRatio(-1.0, 3.4, 4.1), FatalError);
}

// --- Trace generation and opportunity analysis ---------------------------------

TEST(Trace, GeneratesRequestedLength)
{
    workload::TraceGenerator gen;
    util::Rng rng(1);
    const auto trace = gen.generate(rng, 7.0);
    EXPECT_EQ(trace.size(), 7u * 288u); // 5-minute samples.
    for (const auto &s : trace) {
        EXPECT_GE(s.utilization, 0.0);
        EXPECT_LE(s.utilization, 1.0);
        EXPECT_GE(s.activeCores, 1);
        EXPECT_LE(s.activeCores, 28);
    }
}

TEST(Trace, MeanUtilizationNearTarget)
{
    workload::TraceParams params;
    params.meanUtil = 0.45;
    workload::TraceGenerator gen(params);
    util::Rng rng(2);
    const auto trace = gen.generate(rng, 14.0);
    double total = 0.0;
    for (const auto &s : trace)
        total += s.utilization;
    EXPECT_NEAR(total / trace.size(), 0.45, 0.05);
}

TEST(Trace, DiurnalPatternPresent)
{
    workload::TraceGenerator gen;
    util::Rng rng(3);
    const auto trace = gen.generate(rng, 7.0);
    // Compare 16:00 samples (peak) against 04:00 samples (trough).
    double peak = 0.0;
    double trough = 0.0;
    int peak_n = 0;
    int trough_n = 0;
    for (const auto &s : trace) {
        const double hour = std::fmod(s.time / 3600.0, 24.0);
        if (hour >= 15.0 && hour < 17.0) {
            peak += s.utilization;
            ++peak_n;
        } else if (hour >= 3.0 && hour < 5.0) {
            trough += s.utilization;
            ++trough_n;
        }
    }
    ASSERT_GT(peak_n, 0);
    ASSERT_GT(trough_n, 0);
    EXPECT_GT(peak / peak_n, trough / trough_n + 0.15);
}

TEST(Trace, OpportunityLargerUnderImmersion)
{
    // The Sec. IV claim: with air cooling there is some turbo headroom
    // at partial utilization; 2PIC guarantees more.
    workload::TraceGenerator gen;
    util::Rng rng(4);
    const auto trace = gen.generate(rng, 3.0);

    const auto governor = hw::TurboGovernor::skylake8180();
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);
    thermal::TwoPhaseImmersionCooling fc(
        thermal::fc3284(),
        {thermal::BoilingInterface::Coating::DirectIhs});

    const auto air_report =
        workload::analyzeOpportunity(governor, socket, air, trace);
    const auto fc_report =
        workload::analyzeOpportunity(governor, socket, fc, trace);

    // Sec. IV: opportunities exist "still with air cooling, depending on
    // the number of active cores and their utilizations"...
    EXPECT_GT(air_report.overclockShare, 0.1);
    EXPECT_LT(air_report.overclockShare, 0.95);
    // ...and 2PIC extends them (lower leakage frees power budget).
    EXPECT_GT(fc_report.overclockShare, air_report.overclockShare);
    EXPECT_GE(fc_report.meanSustainable, air_report.meanSustainable);
    const double sum = fc_report.turboShare + fc_report.overclockShare +
                       fc_report.guaranteedShare;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Trace, HigherTdpShrinksAirOpportunity)
{
    // "Such opportunities will diminish in future component generations
    // with higher TDP": emulate a higher-power part by shrinking the
    // governor's power budget relative to its dynamic demand.
    workload::TraceGenerator gen;
    util::Rng rng(5);
    const auto trace = gen.generate(rng, 3.0);
    const auto socket = power::SocketPowerModel::skylakeServer(2.6);
    thermal::AirCooling air(thermal::CoolingTech::DirectEvaporative, 35.0,
                            0.21);

    auto today = hw::TurboGovernor::skylake8180();
    auto future = hw::TurboGovernor::skylake8180();
    future.setTdp(160.0); // Same table, tighter effective budget.

    const auto today_report =
        workload::analyzeOpportunity(today, socket, air, trace);
    const auto future_report =
        workload::analyzeOpportunity(future, socket, air, trace);
    EXPECT_LT(future_report.meanSustainable,
              today_report.meanSustainable);
}

TEST(Trace, InvalidParamsAreFatal)
{
    workload::TraceParams params;
    params.meanUtil = 1.5;
    EXPECT_THROW(workload::TraceGenerator{params}, FatalError);
    workload::TraceGenerator gen;
    util::Rng rng(6);
    EXPECT_THROW(gen.generate(rng, 0.0), FatalError);
}

// --- Live migration -------------------------------------------------------------

TEST(Migration, ConvergentPreCopyTerminates)
{
    cluster::MigrationModel model;
    const auto est = model.estimate();
    EXPECT_TRUE(est.converged);
    EXPECT_GT(est.rounds, 1);
    EXPECT_GT(est.totalTime, 10.0);  // 16 GB over 10 Gbps: tens of s.
    EXPECT_LT(est.totalTime, 120.0);
    EXPECT_LT(est.downtime, 1.0);    // Sub-second stop-and-copy.
    EXPECT_GT(est.dataCopiedGb, model.params().memoryGb);
}

TEST(Migration, DirtierGuestsTakeLonger)
{
    cluster::MigrationParams calm;
    calm.dirtyRateGbps = 0.5;
    cluster::MigrationParams busy;
    busy.dirtyRateGbps = 4.0;
    const auto calm_est = cluster::MigrationModel(calm).estimate();
    const auto busy_est = cluster::MigrationModel(busy).estimate();
    EXPECT_GT(busy_est.totalTime, calm_est.totalTime);
    EXPECT_GT(busy_est.downtime, calm_est.downtime);
}

TEST(Migration, NonConvergentGuestForcesStopAndCopy)
{
    cluster::MigrationParams hostile;
    hostile.dirtyRateGbps = 12.0; // Dirties faster than the link copies.
    const auto est = cluster::MigrationModel(hostile).estimate();
    EXPECT_FALSE(est.converged);
    EXPECT_GT(est.downtime, 0.5);
}

TEST(Migration, OverclockStopGapBeatsAllOtherResponses)
{
    // The Sec. V argument: overclock immediately, migrate in the
    // background — less degradation than enduring or migrating alone.
    cluster::MigrationModel migration;
    const double slowdown = 0.8;     // 20 % interference.
    const double oc_speedup = 1.21;  // OC1 on a core-bound app.
    const Seconds hotspot = 1800.0;  // Half an hour.
    const double wear = 2e-5;        // Per overclocked hour.

    const auto endure = cluster::evaluateHotspot(
        cluster::HotspotResponse::Endure, slowdown, oc_speedup, hotspot,
        migration, wear);
    const auto migrate = cluster::evaluateHotspot(
        cluster::HotspotResponse::MigrateOnly, slowdown, oc_speedup,
        hotspot, migration, wear);
    const auto stopgap = cluster::evaluateHotspot(
        cluster::HotspotResponse::OverclockStopGap, slowdown, oc_speedup,
        hotspot, migration, wear);

    EXPECT_LT(migrate.degradationSeconds, endure.degradationSeconds);
    EXPECT_LT(stopgap.degradationSeconds, migrate.degradationSeconds);
    EXPECT_GT(stopgap.wearFractionSpent, 0.0);
    // The stop-gap only overclocks for the migration window, not the
    // whole hotspot.
    EXPECT_LT(stopgap.overclockedTime, hotspot);
}

TEST(Migration, OverclockOnlySpendsWearForTheWholeHotspot)
{
    cluster::MigrationModel migration;
    const auto oc_only = cluster::evaluateHotspot(
        cluster::HotspotResponse::OverclockOnly, 0.8, 1.21, 3600.0,
        migration, 2e-5);
    EXPECT_DOUBLE_EQ(oc_only.overclockedTime, 3600.0);
    EXPECT_NEAR(oc_only.wearFractionSpent, 2e-5, 1e-12);
    EXPECT_DOUBLE_EQ(oc_only.migrationTime, 0.0);
}

TEST(Migration, InvalidInputsAreFatal)
{
    EXPECT_THROW(cluster::MigrationModel({0.0}), FatalError);
    cluster::MigrationModel migration;
    EXPECT_THROW(cluster::evaluateHotspot(
                     cluster::HotspotResponse::Endure, 1.5, 1.2, 60.0,
                     migration, 0.0),
                 FatalError);
    EXPECT_THROW(cluster::evaluateHotspot(
                     cluster::HotspotResponse::Endure, 0.8, 0.9, 60.0,
                     migration, 0.0),
                 FatalError);
}

// --- Predictive scaling -----------------------------------------------------------

TEST(Predictive, TracksLinearRamp)
{
    autoscale::HoltForecaster forecaster;
    for (int i = 0; i <= 20; ++i)
        forecaster.observe(i * 30.0, 0.20 + 0.001 * i * 30.0);
    // Signal: util = 0.2 + 0.001/s. Forecast 60 s out.
    EXPECT_NEAR(forecaster.forecast(60.0),
                0.20 + 0.001 * 660.0, 0.03);
    EXPECT_NEAR(forecaster.trend(), 0.001, 2e-4);
}

TEST(Predictive, FlatSignalForecastsItself)
{
    autoscale::HoltForecaster forecaster;
    for (int i = 0; i <= 20; ++i)
        forecaster.observe(i * 30.0, 0.35);
    EXPECT_NEAR(forecaster.forecast(300.0), 0.35, 1e-6);
}

TEST(Predictive, PlansProactiveScaleOutBeforeBreach)
{
    autoscale::HoltForecaster forecaster;
    // Ramping at 0.002/s from 0.30: crosses 0.50 in 100 s.
    for (int i = 0; i <= 20; ++i)
        forecaster.observe(i * 10.0, 0.30 + 0.002 * i * 10.0);
    const auto decision =
        autoscale::planProactive(forecaster, 0.50 + 0.40, 60.0, 600.0);
    // Breach of 0.90 predicted within the horizon but after 60 s: start
    // nothing yet.
    EXPECT_FALSE(decision.scaleOutNow);
    EXPECT_GT(decision.predictedBreach, 60.0);

    const auto urgent =
        autoscale::planProactive(forecaster, 0.52, 60.0, 600.0);
    // Breach of 0.52 arrives in under 60 s: scale out now and bridge
    // with overclock.
    EXPECT_TRUE(urgent.scaleOutNow);
    EXPECT_TRUE(urgent.overclockBridge);
}

TEST(Predictive, NoBreachNoAction)
{
    autoscale::HoltForecaster forecaster;
    for (int i = 0; i <= 10; ++i)
        forecaster.observe(i * 30.0, 0.30 - 0.0001 * i);
    const auto decision =
        autoscale::planProactive(forecaster, 0.50, 60.0, 600.0);
    EXPECT_FALSE(decision.scaleOutNow);
    EXPECT_FALSE(decision.overclockBridge);
    EXPECT_LT(decision.predictedBreach, 0.0);
}

TEST(Predictive, InvalidInputsAreFatal)
{
    EXPECT_THROW(autoscale::HoltForecaster(0.0, 0.5), FatalError);
    autoscale::HoltForecaster forecaster;
    forecaster.observe(10.0, 0.5);
    EXPECT_THROW(forecaster.observe(5.0, 0.5), FatalError);
    EXPECT_THROW(forecaster.forecast(-1.0), FatalError);
}

// --- Environmental accounting -------------------------------------------------------

TEST(Environment, ImmersionMatchesEvaporativeWue)
{
    // Sec. IV: "WUE will be at par with evaporative-cooled datacenters".
    EXPECT_DOUBLE_EQ(
        thermal::EnvironmentModel::waterUsageEffectiveness(
            thermal::CoolingTech::Immersion2P),
        thermal::EnvironmentModel::waterUsageEffectiveness(
            thermal::CoolingTech::DirectEvaporative));
}

TEST(Environment, LowerPueLowersEnergyCarbon)
{
    thermal::EnvironmentModel model;
    const auto air = model.footprint(
        thermal::CoolingTech::DirectEvaporative, 636.0);
    const auto immersion =
        model.footprint(thermal::CoolingTech::Immersion2P, 636.0);
    EXPECT_LT(immersion.co2EnergyKg, air.co2EnergyKg);
    EXPECT_LT(immersion.energyKwh, air.energyKwh);
}

TEST(Environment, VaporTrapsSuppressFluidCarbon)
{
    thermal::EnvironmentParams no_traps;
    no_traps.vaporTrapEfficiency = 0.0;
    thermal::EnvironmentParams traps;
    traps.vaporTrapEfficiency = 0.95;
    const double loss_g = 600.0; // A year of service events.
    const auto leaky = thermal::EnvironmentModel(no_traps).footprint(
        thermal::CoolingTech::Immersion2P, 636.0, loss_g);
    const auto trapped = thermal::EnvironmentModel(traps).footprint(
        thermal::CoolingTech::Immersion2P, 636.0, loss_g);
    EXPECT_NEAR(trapped.co2VaporKg, leaky.co2VaporKg * 0.05, 1e-9);
    EXPECT_LT(trapped.co2TotalKg, leaky.co2TotalKg);
}

TEST(Environment, RenewablesScaleEnergyCarbon)
{
    thermal::EnvironmentParams all_renewable;
    all_renewable.renewableFraction = 1.0;
    const auto footprint =
        thermal::EnvironmentModel(all_renewable)
            .footprint(thermal::CoolingTech::Immersion2P, 836.0);
    EXPECT_DOUBLE_EQ(footprint.co2EnergyKg, 0.0);
}

TEST(Environment, InvalidInputsAreFatal)
{
    thermal::EnvironmentParams params;
    params.renewableFraction = 1.5;
    EXPECT_THROW(thermal::EnvironmentModel{params}, FatalError);
    thermal::EnvironmentModel model;
    EXPECT_THROW(
        model.footprint(thermal::CoolingTech::Immersion2P, -1.0),
        FatalError);
}

} // namespace
} // namespace imsim
