/**
 * @file
 * Unit tests for the datacenter power-oversubscription simulator
 * (Takeaway 1's capping-vs-overclocking interplay) and the wear-credit
 * overclocking scheduler (the paper's wear-out-counter direction).
 */

#include <gtest/gtest.h>

#include "cluster/datacenter.hh"
#include "core/credit.hh"
#include "reliability/lifetime.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace imsim {
namespace {

std::vector<cluster::RackConfig>
defaultRacks()
{
    // Two batch racks and one latency rack (higher priority).
    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    return {batch, batch, latency};
}

cluster::DatacenterPowerSim
makeSim(double oversub = 1.3)
{
    // Feed sized so the nominal fleet's diurnal peak just fits (~39.6 kW
    // at 70% utilization) but overclocking on top of it breaches the
    // 40 kW circuit — the oversubscribed regime Takeaway 1 warns about.
    return cluster::DatacenterPowerSim(defaultRacks(), 40000.0, oversub,
                                       1.2);
}

TEST(Datacenter, FleetPeakAccounting)
{
    const auto sim = makeSim();
    EXPECT_DOUBLE_EQ(sim.fleetNominalPeak(), 3 * 24 * 700.0);
}

TEST(Datacenter, NoOverclockNoCappedOverclock)
{
    auto sim = makeSim();
    util::Rng rng(1);
    const auto outcome =
        sim.run(cluster::OverclockPolicy::Never, rng, 3.0);
    EXPECT_DOUBLE_EQ(outcome.overclockShare, 0.0);
    EXPECT_DOUBLE_EQ(outcome.cappedOverclockShare, 0.0);
    EXPECT_NEAR(outcome.speedupDelivered, 1.0, 1e-12);
    EXPECT_GT(outcome.energyMwh, 0.0);
    EXPECT_LT(outcome.meanFeedUtilization, 1.0);
}

TEST(Datacenter, AlwaysOverclockingTriggersCapping)
{
    // Takeaway 1: indiscriminate overclocking in an oversubscribed
    // facility hits the limits and gets capped.
    auto sim = makeSim();
    util::Rng rng(2);
    const auto always =
        sim.run(cluster::OverclockPolicy::Always, rng, 3.0);
    util::Rng rng2(2);
    const auto never =
        sim.run(cluster::OverclockPolicy::Never, rng2, 3.0);
    EXPECT_GT(always.cappingMinutesShare, never.cappingMinutesShare);
    EXPECT_GT(always.cappedOverclockShare, 0.02);
    EXPECT_GT(always.energyMwh, never.energyMwh);
}

TEST(Datacenter, PowerAwarePolicyAvoidsWastedOverclocks)
{
    auto sim = makeSim();
    util::Rng rng_a(3);
    const auto always =
        sim.run(cluster::OverclockPolicy::Always, rng_a, 3.0);
    util::Rng rng_b(3);
    const auto aware =
        sim.run(cluster::OverclockPolicy::PowerAware, rng_b, 3.0);
    // The power-aware policy wastes (almost) nothing on capped
    // overclocks and caps less overall.
    EXPECT_LT(aware.cappedOverclockShare,
              always.cappedOverclockShare * 0.5 + 1e-9);
    EXPECT_LE(aware.cappingMinutesShare,
              always.cappingMinutesShare + 1e-9);
}

TEST(Datacenter, DiurnalValleysLeaveOverclockRoom)
{
    // "Providers can overclock during periods of power underutilization
    // due to ... diurnal patterns": the power-aware policy still serves
    // a large share of the overclock demand.
    auto sim = makeSim();
    util::Rng rng(4);
    const auto aware =
        sim.run(cluster::OverclockPolicy::PowerAware, rng, 3.0);
    EXPECT_GT(aware.overclockShare, 0.5);
    EXPECT_GT(aware.speedupDelivered, 1.08);
}

TEST(Datacenter, InvalidConfigurationIsFatal)
{
    EXPECT_THROW(cluster::DatacenterPowerSim({}, 1000.0), FatalError);
    auto racks = defaultRacks();
    EXPECT_THROW(cluster::DatacenterPowerSim(racks, 0.0), FatalError);
    EXPECT_THROW(cluster::DatacenterPowerSim(racks, 1000.0, 0.5),
                 FatalError);
    racks[0].overclockDemand = 1.5;
    EXPECT_THROW(cluster::DatacenterPowerSim(racks, 1000.0), FatalError);
}

// --- Credit scheduler ---------------------------------------------------------

// GCC 12 flags the aggregate rig below with a spurious
// -Wmaybe-uninitialized at -O2 (the members are all default-initialized);
// suppress it for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

struct CreditRig
{
    reliability::LifetimeModel model;
    reliability::WearTracker tracker{model, 5.0};

    // HFE-7000 operating points (Table V anchors).
    reliability::StressCondition nominal{0.90, 51.0, 35.0, 1.0, 1.0};
    reliability::StressCondition green{0.98, 60.0, 35.0, 1.23, 1.0};
    reliability::StressCondition red{1.01, 64.0, 35.0, 1.30, 1.0};
};

TEST(CreditScheduler, NoDemandBanksCredit)
{
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    const auto decision = scheduler.decide(
        rig.nominal, rig.green, rig.red, false, 1.0 / 365.0);
    EXPECT_FALSE(decision.overclock);
    EXPECT_DOUBLE_EQ(decision.frequencyRatio, 1.0);
}

TEST(CreditScheduler, FreshPartGetsGreenBandOnly)
{
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    const auto decision = scheduler.decide(
        rig.nominal, rig.green, rig.red, true, 1.0 / 365.0);
    EXPECT_TRUE(decision.overclock);
    EXPECT_FALSE(decision.redBand);
    EXPECT_DOUBLE_EQ(decision.frequencyRatio, 1.23);
}

TEST(CreditScheduler, BankedCreditUnlocksRedBand)
{
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    // A year of cool nominal running banks substantial credit.
    scheduler.commit(rig.nominal, 1.0);
    EXPECT_GT(rig.tracker.credit(), 0.05);
    const auto decision = scheduler.decide(
        rig.nominal, rig.green, rig.red, true, 1.0 / 365.0);
    EXPECT_TRUE(decision.overclock);
    EXPECT_TRUE(decision.redBand);
    EXPECT_DOUBLE_EQ(decision.frequencyRatio, 1.30);
}

TEST(CreditScheduler, RedBandStopsBeforeTheSafetyReserve)
{
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    scheduler.commit(rig.nominal, 0.5); // Bank some credit.
    // Spend it down with repeated red-band months; eventually the
    // scheduler must fall back to green.
    int red_grants = 0;
    for (int month = 0; month < 120; ++month) {
        const auto decision = scheduler.decide(
            rig.nominal, rig.green, rig.red, true, 1.0 / 12.0);
        if (decision.redBand)
            ++red_grants;
        const auto &applied = decision.redBand ? rig.red
                              : decision.overclock ? rig.green
                                                   : rig.nominal;
        scheduler.commit(applied, 1.0 / 12.0);
    }
    EXPECT_GT(red_grants, 0);
    EXPECT_LT(red_grants, 120);
    // Never breaches the design budget at end of horizon.
    EXPECT_GE(rig.tracker.credit(), -1e-6);
}

TEST(CreditScheduler, FiveYearHorizonEndsWithinBudget)
{
    // Hourly scheduling across a full service life with diurnal demand:
    // the part retires at (or under) exactly its design budget.
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    util::Rng rng(7);
    const Years step = 1.0 / units::kHoursPerYear;
    double overclocked_hours = 0.0;
    for (int hour = 0; hour < 5 * 8766; hour += 6) {
        const bool demand = rng.bernoulli(0.4);
        const auto decision = scheduler.decide(
            rig.nominal, rig.green, rig.red, demand, 6.0 * step);
        const auto &applied = decision.redBand ? rig.red
                              : decision.overclock ? rig.green
                                                   : rig.nominal;
        if (decision.overclock)
            overclocked_hours += 6.0;
        scheduler.commit(applied, 6.0 * step);
    }
    EXPECT_NEAR(rig.tracker.age(), 5.0, 0.01);
    EXPECT_LE(rig.tracker.consumed(), 1.0 + 1e-6);
    // It overclocked a substantial share of the demanded hours.
    EXPECT_GT(overclocked_hours, 5000.0);
}

#pragma GCC diagnostic pop

TEST(CreditScheduler, PolicyValidation)
{
    CreditRig rig;
    core::CreditScheduler scheduler(rig.tracker);
    core::CreditPolicy bad;
    bad.redRatio = 1.1; // Below green.
    EXPECT_THROW(core::CreditScheduler(rig.tracker, bad), FatalError);
}

} // namespace
} // namespace imsim
