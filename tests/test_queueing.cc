/**
 * @file
 * Unit tests for the M/G/k queueing cluster: utilization law, latency
 * behaviour under load and frequency changes, server lifecycle,
 * counters, and VM-hour accounting.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace {

workload::QueueingCluster::Params
defaultParams()
{
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3;
    params.serviceCv = 1.5;
    params.kappa = 0.9;
    params.refFreq = 3.4;
    params.threadsPerServer = 4;
    return params;
}

TEST(Queueing, UtilizationFollowsLittlesLaw)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(1), defaultParams());
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(1000.0);
    sim.runUntil(300.0);
    // rho = lambda * s / (k * c) = 1000 * 0.0026 / 8 = 0.325.
    EXPECT_NEAR(cluster.fleetUtilization(180.0), 0.325, 0.03);
}

TEST(Queueing, LatencyAtLeastServiceTime)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(2), defaultParams());
    cluster.addServer(3.4);
    cluster.setArrivalRate(200.0);
    sim.runUntil(120.0);
    EXPECT_GT(cluster.completed(), 10000u);
    EXPECT_GT(cluster.latencies().mean(), 2.0e-3);
    EXPECT_GT(cluster.latencies().p95(), cluster.latencies().mean());
}

TEST(Queueing, HighLoadInflatesTail)
{
    sim::Simulation sim_lo;
    workload::QueueingCluster low(sim_lo, util::Rng(3), defaultParams());
    low.addServer(3.4);
    low.setArrivalRate(300.0);
    sim_lo.runUntil(120.0);

    sim::Simulation sim_hi;
    workload::QueueingCluster high(sim_hi, util::Rng(3), defaultParams());
    high.addServer(3.4);
    high.setArrivalRate(1300.0); // rho ~ 0.85.
    sim_hi.runUntil(120.0);

    EXPECT_GT(high.latencies().p95(), 1.5 * low.latencies().p95());
}

TEST(Queueing, OverclockingReducesUtilizationAndLatency)
{
    sim::Simulation sim_base;
    workload::QueueingCluster base(sim_base, util::Rng(4), defaultParams());
    base.addServer(3.4);
    base.setArrivalRate(1200.0);
    sim_base.runUntil(120.0);

    sim::Simulation sim_oc;
    workload::QueueingCluster oc(sim_oc, util::Rng(4), defaultParams());
    oc.addServer(4.1);
    oc.setArrivalRate(1200.0);
    sim_oc.runUntil(120.0);

    EXPECT_LT(oc.fleetUtilization(60.0), base.fleetUtilization(60.0));
    EXPECT_LT(oc.latencies().p95(), base.latencies().p95());
}

TEST(Queueing, FrequencyChangeMatchesEq1Prediction)
{
    // The utilization after a frequency change should match Eq. 1 with
    // kappa as the scalable fraction.
    const auto params = defaultParams();
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(5), params);
    cluster.addServer(3.4);
    cluster.setArrivalRate(900.0);
    sim.runUntil(200.0);
    const double util_before = cluster.fleetUtilization(60.0);
    cluster.setAllFrequencies(4.1);
    sim.runUntil(400.0);
    const double util_after = cluster.fleetUtilization(60.0);
    const double predicted =
        util_before * (params.kappa * 3.4 / 4.1 + (1 - params.kappa));
    EXPECT_NEAR(util_after, predicted, 0.03);
}

TEST(Queueing, RemoveServerDrains)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(6), defaultParams());
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(800.0);
    sim.runUntil(60.0);
    cluster.removeServer();
    EXPECT_EQ(cluster.activeServers(), 1u);
    EXPECT_EQ(cluster.serverCount(), 2u);
    const auto completed_before = cluster.completed();
    sim.runUntil(120.0);
    // The remaining server keeps serving.
    EXPECT_GT(cluster.completed(), completed_before);
}

TEST(Queueing, RemoveLastServerThenFatal)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(7), defaultParams());
    cluster.addServer(3.4);
    cluster.removeServer();
    EXPECT_THROW(cluster.removeServer(), FatalError);
}

TEST(Queueing, NewServerAbsorbsBacklog)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(8), defaultParams());
    cluster.addServer(3.4);
    cluster.setArrivalRate(2500.0); // Far beyond one server's capacity.
    sim.runUntil(30.0);
    EXPECT_GT(cluster.queueDepth(), 0u);
    cluster.addServer(3.4);
    cluster.addServer(3.4);
    cluster.setArrivalRate(500.0);
    sim.runUntil(120.0);
    EXPECT_EQ(cluster.queueDepth(), 0u);
}

TEST(Queueing, VmHoursIntegrateActiveServers)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(9), defaultParams());
    cluster.addServer(3.4);
    sim.runUntil(1800.0);
    cluster.addServer(3.4);
    sim.runUntil(3600.0);
    // 1 VM for 30 min + 2 VMs for 30 min = 1.5 VM-hours.
    EXPECT_NEAR(cluster.vmHours(), 1.5, 0.01);
    EXPECT_EQ(cluster.maxServers(), 2u);
}

TEST(Queueing, CountersExposeKappa)
{
    sim::Simulation sim;
    auto params = defaultParams();
    params.kappa = 0.75;
    workload::QueueingCluster cluster(sim, util::Rng(10), params);
    const std::size_t id = cluster.addServer(3.4);
    cluster.setArrivalRate(600.0);
    sim.runUntil(60.0);
    const auto before = cluster.counters(id);
    sim.runUntil(120.0);
    const auto after = cluster.counters(id);
    EXPECT_NEAR(after.scalableFraction(before), 0.75, 1e-9);
}

TEST(Queueing, ArrivalRateZeroStopsTraffic)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(11), defaultParams());
    cluster.addServer(3.4);
    cluster.setArrivalRate(500.0);
    sim.runUntil(60.0);
    cluster.setArrivalRate(0.0);
    const auto count = cluster.completed();
    sim.runUntil(120.0);
    // Only in-flight requests finish after the tap closes.
    EXPECT_LT(cluster.completed() - count, 10u);
}

TEST(Queueing, DeterministicGivenSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::Simulation sim;
        workload::QueueingCluster cluster(sim, util::Rng(seed),
                                          defaultParams());
        cluster.addServer(3.4);
        cluster.setArrivalRate(700.0);
        sim.runUntil(60.0);
        return cluster.latencies().p95();
    };
    EXPECT_DOUBLE_EQ(run(123), run(123));
    EXPECT_NE(run(123), run(124));
}

TEST(Queueing, LifetimeBusyFractionTracksLoad)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(12), defaultParams());
    const std::size_t id = cluster.addServer(3.4);
    cluster.setArrivalRate(1000.0);
    sim.runUntil(120.0);
    // rho = 1000 * 0.0026 / 4 = 0.65.
    EXPECT_NEAR(cluster.lifetimeBusyFraction(id), 0.65, 0.05);
}

TEST(Queueing, InvalidOperationsAreFatal)
{
    sim::Simulation sim;
    workload::QueueingCluster cluster(sim, util::Rng(13), defaultParams());
    EXPECT_THROW(cluster.setFrequency(0, 3.4), FatalError);
    cluster.addServer(3.4);
    EXPECT_THROW(cluster.setFrequency(0, 0.0), FatalError);
    EXPECT_THROW(cluster.addServer(-1.0), FatalError);
    EXPECT_THROW(cluster.setArrivalRate(-5.0), FatalError);
    EXPECT_THROW(cluster.utilization(7, 30.0), FatalError);
}

} // namespace
} // namespace imsim
