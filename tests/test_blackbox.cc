/**
 * @file
 * Black-box flight recorder (obs::FlightRecorder): multi-resolution
 * retention semantics, the bounded event ring, dump determinism across
 * sweep jobs and sim threads, observer purity against the datacenter
 * minute loop, and every post-mortem trigger (error hook, watchdog
 * page, invariant violation). The DumpWhileRecording case is the
 * `ctest -L tsan` race probe: one thread ticking while another dumps.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/datacenter.hh"
#include "fault/invariants.hh"
#include "obs/blackbox.hh"
#include "obs/watchdog.hh"
#include "exp/sweep.hh"
#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace imsim;

namespace {

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// A recorder over one externally driven channel with a small
/// two-tier ladder, for retention tests.
struct Probe
{
    double value = 0.0;
    obs::FlightRecorder recorder;

    explicit Probe(obs::FlightRecorder::Config config)
        : recorder(std::move(config))
    {
        recorder.addChannel("probe", [this] { return value; });
    }
};

TEST(FlightRecorder, FoldsTicksIntoBinsWithMinMeanMax)
{
    obs::FlightRecorder::Config config;
    config.tiers = {{1.0, 8}, {4.0, 4}};
    Probe probe(config);
    // Four ticks per 4 s bin: values 1, 3, 5, 7.
    for (int i = 0; i < 8; ++i) {
        probe.value = 1.0 + 2.0 * (i % 4);
        probe.recorder.tick(static_cast<double>(i));
    }
    ASSERT_EQ(probe.recorder.ticks(), 8u);
    // Fine tier: one sample per bin, min == mean == max.
    ASSERT_EQ(probe.recorder.tierRows(0), 8u);
    const auto fine = probe.recorder.bin(0, 3, 0);
    EXPECT_DOUBLE_EQ(fine.t, 3.0);
    EXPECT_EQ(fine.samples, 1u);
    EXPECT_DOUBLE_EQ(fine.min, 7.0);
    EXPECT_DOUBLE_EQ(fine.mean, 7.0);
    EXPECT_DOUBLE_EQ(fine.max, 7.0);
    // Coarse tier: 4 samples folded into each of two bins.
    ASSERT_EQ(probe.recorder.tierRows(1), 2u);
    const auto coarse = probe.recorder.bin(1, 0, 0);
    EXPECT_DOUBLE_EQ(coarse.t, 0.0);
    EXPECT_EQ(coarse.samples, 4u);
    EXPECT_DOUBLE_EQ(coarse.min, 1.0);
    EXPECT_DOUBLE_EQ(coarse.mean, 4.0);
    EXPECT_DOUBLE_EQ(coarse.max, 7.0);
}

TEST(FlightRecorder, RingEvictsOldestBinsInPlace)
{
    obs::FlightRecorder::Config config;
    config.tiers = {{1.0, 4}};
    Probe probe(config);
    for (int i = 0; i < 10; ++i) {
        probe.value = static_cast<double>(i);
        probe.recorder.tick(static_cast<double>(i));
    }
    // Capacity 4: only the last four 1 s bins survive, oldest first.
    ASSERT_EQ(probe.recorder.tierRows(0), 4u);
    for (std::size_t row = 0; row < 4; ++row) {
        const auto bin = probe.recorder.bin(0, row, 0);
        EXPECT_DOUBLE_EQ(bin.t, 6.0 + static_cast<double>(row));
        EXPECT_DOUBLE_EQ(bin.mean, 6.0 + static_cast<double>(row));
    }
}

TEST(FlightRecorder, SparseTicksSkipEmptyBins)
{
    obs::FlightRecorder::Config config;
    config.tiers = {{1.0, 8}};
    Probe probe(config);
    probe.value = 2.0;
    probe.recorder.tick(0.0);
    probe.value = 9.0;
    probe.recorder.tick(5.0); // 4 empty bins in between: not stored.
    ASSERT_EQ(probe.recorder.tierRows(0), 2u);
    EXPECT_DOUBLE_EQ(probe.recorder.bin(0, 0, 0).t, 0.0);
    EXPECT_DOUBLE_EQ(probe.recorder.bin(0, 1, 0).t, 5.0);
    EXPECT_DOUBLE_EQ(probe.recorder.bin(0, 1, 0).mean, 9.0);
}

TEST(FlightRecorder, GuardsChannelSealAndTimeDirection)
{
    Probe probe(obs::FlightRecorder::Config{});
    probe.recorder.tick(0.0);
    EXPECT_THROW(probe.recorder.addChannel("late", [] { return 0.0; }),
                 FatalError);
    EXPECT_THROW(probe.recorder.tick(-1.0), FatalError);
}

TEST(FlightRecorder, ForCadenceScalesTheDefaultLadder)
{
    const auto config = obs::FlightRecorder::Config::forCadence(1.0);
    ASSERT_EQ(config.tiers.size(), 3u);
    EXPECT_DOUBLE_EQ(config.tiers[0].resolution, 1.0);
    EXPECT_EQ(config.tiers[0].capacity, 3600u);
    EXPECT_DOUBLE_EQ(config.tiers[1].resolution, 10.0);
    EXPECT_DOUBLE_EQ(config.tiers[2].resolution, 60.0);
}

TEST(FlightRecorder, EventRingIsBoundedOldestFirst)
{
    obs::FlightRecorder::Config config;
    config.eventCapacity = 4;
    obs::FlightRecorder recorder(config);
    for (int i = 0; i < 7; ++i)
        recorder.note(static_cast<double>(i),
                      "note" + std::to_string(i));
    EXPECT_EQ(recorder.eventsNoted(), 7u);
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().label, "note3");
    EXPECT_EQ(events.back().label, "note6");
    EXPECT_EQ(events.front().kind, obs::BlackboxEventKind::Note);
}

TEST(FlightRecorder, AlertFaultViolationEventsKeepTheirKind)
{
    obs::FlightRecorder recorder;
    recorder.noteAlert(1.0, "sla_p99", 0.9, true);
    recorder.noteFault(2.0, "server_down#3");
    recorder.noteViolation(3.0, "power_cap");
    recorder.noteAlert(4.0, "sla_p99", 0.2, false);
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, obs::BlackboxEventKind::AlertRaise);
    EXPECT_DOUBLE_EQ(events[0].value, 0.9);
    EXPECT_EQ(events[1].kind, obs::BlackboxEventKind::Fault);
    EXPECT_EQ(events[2].kind, obs::BlackboxEventKind::Violation);
    EXPECT_EQ(events[3].kind, obs::BlackboxEventKind::AlertClear);
    EXPECT_STREQ(obs::blackboxEventKindName(events[1].kind), "fault");
}

TEST(FlightRecorder, DumpCarriesSchemaTiersAndEvents)
{
    obs::FlightRecorder::Config config;
    config.tiers = {{1.0, 4}};
    Probe probe(config);
    probe.value = 2.5;
    probe.recorder.tick(0.0);
    probe.recorder.noteFault(0.5, "nic_flap");
    const std::string json = probe.recorder.toJson("unit", "{}");
    EXPECT_NE(json.find(obs::kBlackboxSchema), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"resolution_s\": 1"), std::string::npos);
    EXPECT_NE(json.find("nic_flap"), std::string::npos);
    EXPECT_NE(json.find("\"probe\""), std::string::npos);
}

/// Runs one deterministic recording per sweep point and returns the
/// merged dump (fixed meta, so the whole string must be stable).
std::string
sweepDump(std::size_t jobs)
{
    exp::SweepRunner runner({jobs, 42, nullptr});
    constexpr std::size_t kPoints = 6;
    std::vector<std::unique_ptr<Probe>> probes;
    for (std::size_t i = 0; i < kPoints; ++i) {
        obs::FlightRecorder::Config config;
        config.tiers = {{1.0, 16}, {8.0, 8}};
        probes.push_back(std::make_unique<Probe>(config));
    }
    runner.map<int>(kPoints, [&](std::size_t i, util::Rng &) {
        util::Rng rng(1000 + i); // Point-local stream.
        Probe &probe = *probes[i];
        for (int t = 0; t < 40; ++t) {
            probe.value = rng.uniform(0.0, 100.0);
            probe.recorder.tick(static_cast<double>(t));
            if (t % 13 == 0)
                probe.recorder.note(static_cast<double>(t), "mark");
        }
        return 0;
    });
    std::vector<std::pair<std::string, const obs::FlightRecorder *>>
        points;
    for (std::size_t i = 0; i < kPoints; ++i) {
        std::string label = "p";
        label += std::to_string(i);
        points.emplace_back(std::move(label), &probes[i]->recorder);
    }
    return obs::FlightRecorder::mergedJson(points, "{}");
}

TEST(FlightRecorder, MergedDumpIsIdenticalAcrossSweepJobs)
{
    EXPECT_EQ(sweepDump(1), sweepDump(8));
}

/// One short oversubscribed datacenter run with a FleetBlackbox
/// attached; returns the outcome and the recorder dump.
std::pair<cluster::DatacenterOutcome, std::string>
observedRun(std::size_t sim_threads, bool attach)
{
    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    cluster::DatacenterPowerSim sim({batch, batch, latency}, 40000.0,
                                    1.3, 1.2);
    sim.setSimThreads(sim_threads);
    obs::FleetAggregator::Config agg_cfg;
    agg_cfg.record = false;
    agg_cfg.cumulative = false;
    obs::FleetBlackbox box(agg_cfg, obs::FlightRecorder::Config{},
                           /*fire_power_w=*/0.98 * 40000.0,
                           /*clear_power_w=*/0.95 * 40000.0);
    if (attach)
        sim.attachObservability(&box.aggregator, &box.watchdog,
                                &box.recorder);
    util::Rng rng(7);
    const auto outcome =
        sim.run(cluster::OverclockPolicy::PowerAware, rng, 0.5);
    return {outcome, box.recorder.toJson("run", "{}")};
}

TEST(FlightRecorder, DumpIsIdenticalAcrossSimThreads)
{
    const auto serial = observedRun(1, true);
    const auto sharded = observedRun(8, true);
    EXPECT_EQ(serial.second, sharded.second);
    EXPECT_NE(serial.second.find("fleet_power_w"), std::string::npos);
}

TEST(FlightRecorder, AttachedRecorderDoesNotChangeTheRun)
{
    const auto bare = observedRun(4, false);
    const auto observed = observedRun(4, true);
    EXPECT_EQ(bare.first.energyMwh, observed.first.energyMwh);
    EXPECT_EQ(bare.first.meanFeedUtilization,
              observed.first.meanFeedUtilization);
    EXPECT_EQ(bare.first.cappingMinutesShare,
              observed.first.cappingMinutesShare);
    EXPECT_EQ(bare.first.speedupDelivered,
              observed.first.speedupDelivered);
    EXPECT_EQ(bare.first.overclockShare, observed.first.overclockShare);
}

/// RAII guard: arms a recorder into the process-wide post-mortem
/// registry with a sink file, and tears both down on scope exit.
struct SinkGuard
{
    std::string path;

    SinkGuard(obs::FlightRecorder &recorder, const std::string &name)
        : path(testing::TempDir() + name)
    {
        std::remove(path.c_str());
        recorder.armPostMortem("armed");
        obs::FlightRecorder::setPostMortemSink(path, "{}");
    }
    ~SinkGuard() { obs::FlightRecorder::clearPostMortemSink(); }
};

TEST(FlightRecorder, FatalErrorTriggersPostMortemDump)
{
    Probe probe(obs::FlightRecorder::Config{});
    probe.value = 1.0;
    probe.recorder.tick(0.0);
    SinkGuard sink(probe.recorder, "imsim_blackbox_fatal.json");
    EXPECT_THROW(util::fatal("thermal runaway"), FatalError);
    const std::string dump = slurpFile(sink.path);
    EXPECT_NE(dump.find(obs::kBlackboxSchema), std::string::npos);
    EXPECT_NE(dump.find("thermal runaway"), std::string::npos);
    EXPECT_NE(dump.find("\"label\": \"armed\""), std::string::npos);
}

TEST(FlightRecorder, PostMortemReasonStaysOutOfTheRecorders)
{
    Probe probe(obs::FlightRecorder::Config{});
    probe.recorder.tick(0.0);
    SinkGuard sink(probe.recorder, "imsim_blackbox_pure.json");
    const std::string before = probe.recorder.toJson("x", "{}");
    EXPECT_FALSE(obs::FlightRecorder::postMortem("checkpoint").empty());
    // The trigger is metadata of the dump, not an event: recorder
    // state (and thus any later dump) is unchanged.
    EXPECT_EQ(probe.recorder.toJson("x", "{}"), before);
    EXPECT_EQ(probe.recorder.eventsNoted(), 0u);
    EXPECT_NE(slurpFile(sink.path).find("\"reason\": \"checkpoint\""),
              std::string::npos);
}

TEST(FlightRecorder, WatchdogPageTriggersPostMortemDump)
{
    Probe probe(obs::FlightRecorder::Config{});
    probe.recorder.tick(0.0);
    SinkGuard sink(probe.recorder, "imsim_blackbox_page.json");

    double signal = 0.0;
    obs::Watchdog watchdog;
    obs::WatchdogRule rule;
    rule.name = "sla_p99";
    rule.kind = obs::AlertKind::TailLatency;
    rule.signal = [&signal] { return signal; };
    rule.fireThreshold = 1.0;
    watchdog.addRule(rule);
    watchdog.attachFlightRecorder(&probe.recorder);

    const std::uint64_t dumps0 = obs::FlightRecorder::postMortemCount();
    watchdog.evaluate(1.0); // Quiet.
    EXPECT_EQ(obs::FlightRecorder::postMortemCount(), dumps0);
    signal = 2.0;
    watchdog.evaluate(2.0); // Page -> dump.
    EXPECT_EQ(obs::FlightRecorder::postMortemCount(), dumps0 + 1);
    const auto events = probe.recorder.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, obs::BlackboxEventKind::AlertRaise);
    EXPECT_EQ(events[0].label, "sla_p99");
    EXPECT_NE(slurpFile(sink.path).find("watchdog page: sla_p99"),
              std::string::npos);
    signal = 0.0;
    watchdog.evaluate(3.0); // Clear is noted but does not dump.
    EXPECT_EQ(obs::FlightRecorder::postMortemCount(), dumps0 + 1);
    EXPECT_EQ(probe.recorder.events().size(), 2u);
}

TEST(FlightRecorder, InvariantViolationTriggersPostMortemDump)
{
    Probe probe(obs::FlightRecorder::Config{});
    probe.recorder.tick(0.0);
    SinkGuard sink(probe.recorder, "imsim_blackbox_violation.json");

    sim::Simulation simulation;
    fault::InvariantChecker checker(simulation);
    bool holds = true;
    checker.addCheck("power_cap", [&holds] { return holds; });
    checker.attachFlightRecorder(&probe.recorder);
    checker.start(1.0);
    const std::uint64_t dumps0 = obs::FlightRecorder::postMortemCount();
    simulation.runUntil(1.5); // Invariant holds: no dump.
    EXPECT_EQ(obs::FlightRecorder::postMortemCount(), dumps0);
    holds = false;
    simulation.runUntil(2.5);
    EXPECT_EQ(obs::FlightRecorder::postMortemCount(), dumps0 + 1);
    const auto events = probe.recorder.events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().kind, obs::BlackboxEventKind::Violation);
    EXPECT_EQ(events.back().label, "power_cap");
    EXPECT_NE(
        slurpFile(sink.path).find("invariant violation: power_cap"),
        std::string::npos);
}

// The `ctest -L tsan` probe: pointJson() may run concurrently with
// tick() — a crashing worker dumps while the sim thread records.
TEST(FlightRecorder, DumpWhileRecordingIsRaceFree)
{
    obs::FlightRecorder::Config config;
    config.tiers = {{1.0, 32}, {8.0, 16}};
    Probe probe(config);
    std::atomic<bool> done{false};
    std::thread sim_thread([&] {
        for (int t = 0; t < 4000; ++t) {
            probe.value = static_cast<double>(t % 97);
            probe.recorder.tick(static_cast<double>(t));
            if (t % 50 == 0)
                probe.recorder.note(static_cast<double>(t), "mark");
        }
        done.store(true);
    });
    // Keep dumping until the sim thread is done AND a minimum number
    // of dumps ran — the recorder may finish first on a loaded box,
    // but the lower bound keeps the probe meaningful either way.
    std::size_t dumps = 0;
    do {
        const std::string json = probe.recorder.pointJson("racer");
        EXPECT_NE(json.find("\"racer\""), std::string::npos);
        ++dumps;
    } while (!done.load() || dumps < 16);
    sim_thread.join();
    EXPECT_GE(dumps, 16u);
    EXPECT_EQ(probe.recorder.ticks(), 4000u);
}

} // namespace
