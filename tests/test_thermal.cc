/**
 * @file
 * Unit tests for the thermal substrate: fluid catalog (Table II), cooling
 * technology catalog (Table I), junction temperatures (Table III), the
 * thermal RC transient, and the immersion tank model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/cooling.hh"
#include "thermal/fluid.hh"
#include "thermal/junction.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"

namespace imsim {
namespace {

using thermal::BoilingInterface;

TEST(Fluid, TableIIProperties)
{
    const auto &fc = thermal::fc3284();
    EXPECT_DOUBLE_EQ(fc.boilingPoint, 50.0);
    EXPECT_DOUBLE_EQ(fc.dielectricConstant, 1.86);
    EXPECT_DOUBLE_EQ(fc.latentHeatJPerG, 105.0);
    EXPECT_GE(fc.usefulLife, 30.0);

    const auto &hfe = thermal::hfe7000();
    EXPECT_DOUBLE_EQ(hfe.boilingPoint, 34.0);
    EXPECT_DOUBLE_EQ(hfe.dielectricConstant, 7.4);
    EXPECT_DOUBLE_EQ(hfe.latentHeatJPerG, 142.0);
}

TEST(Fluid, CatalogAndLookup)
{
    EXPECT_EQ(thermal::fluidCatalog().size(), 2u);
    EXPECT_EQ(thermal::fluidByName("3M FC-3284").boilingPoint, 50.0);
    EXPECT_THROW(thermal::fluidByName("water"), FatalError);
}

TEST(Fluid, VaporMassFlowFollowsLatentHeat)
{
    // 105 W through FC-3284 boils 1 g/s.
    EXPECT_NEAR(thermal::fc3284().vaporMassFlow(105.0), 1.0, 1e-12);
    EXPECT_NEAR(thermal::hfe7000().vaporMassFlow(142.0), 1.0, 1e-12);
    EXPECT_THROW(thermal::fc3284().vaporMassFlow(-1.0), FatalError);
}

TEST(Boiling, BecHalvesResistance)
{
    BoilingInterface coated{BoilingInterface::Coating::DirectIhs};
    BoilingInterface bare{BoilingInterface::Coating::None};
    EXPECT_DOUBLE_EQ(bare.thermalResistance(),
                     2.0 * coated.thermalResistance());
}

TEST(Boiling, TableIiiResistances)
{
    BoilingInterface ihs{BoilingInterface::Coating::DirectIhs};
    BoilingInterface plate{BoilingInterface::Coating::CopperPlate};
    EXPECT_DOUBLE_EQ(ihs.thermalResistance(), 0.08);
    EXPECT_DOUBLE_EQ(plate.thermalResistance(), 0.12);
}

TEST(Boiling, CriticalHeatFluxGuard)
{
    BoilingInterface bare{BoilingInterface::Coating::None};
    // 10 W/cm^2 threshold for uncoated surfaces (Sec. II).
    EXPECT_TRUE(bare.sustainsNucleateBoiling(100.0, 10.0));
    EXPECT_FALSE(bare.sustainsNucleateBoiling(101.0, 10.0));
    BoilingInterface coated{BoilingInterface::Coating::DirectIhs};
    EXPECT_TRUE(coated.sustainsNucleateBoiling(200.0, 10.0));
    EXPECT_THROW(coated.sustainsNucleateBoiling(10.0, 0.0), FatalError);
}

TEST(CoolingCatalog, TableIRows)
{
    const auto &catalog = thermal::coolingTechCatalog();
    ASSERT_EQ(catalog.size(), 6u);
    const auto &chiller = thermal::coolingTechSpec(thermal::CoolingTech::Chiller);
    EXPECT_DOUBLE_EQ(chiller.avgPue, 1.70);
    EXPECT_DOUBLE_EQ(chiller.peakPue, 2.00);
    EXPECT_DOUBLE_EQ(chiller.fanOverheadFraction, 0.05);
    EXPECT_DOUBLE_EQ(chiller.maxServerCooling, 700.0);

    const auto &two_phase =
        thermal::coolingTechSpec(thermal::CoolingTech::Immersion2P);
    EXPECT_DOUBLE_EQ(two_phase.avgPue, 1.02);
    EXPECT_DOUBLE_EQ(two_phase.peakPue, 1.03);
    EXPECT_DOUBLE_EQ(two_phase.fanOverheadFraction, 0.0);
    EXPECT_GE(two_phase.maxServerCooling, 4000.0);
}

TEST(CoolingCatalog, PueImprovesDownTheTable)
{
    const auto &catalog = thermal::coolingTechCatalog();
    for (std::size_t i = 1; i < catalog.size(); ++i) {
        EXPECT_LE(catalog[i].avgPue, catalog[i - 1].avgPue);
        EXPECT_LE(catalog[i].peakPue, catalog[i - 1].peakPue);
    }
}

TEST(AirCooling, TableIiiJunctionTemperature)
{
    // 35 C chamber, 0.22 C/W, ~12 C case pre-heat: 204.4 W -> ~92 C
    // (Table III, Skylake 8168).
    thermal::AirCooling air;
    EXPECT_NEAR(air.junctionTemperature(204.4), 92.0, 1.0);
    // 8180 blade with 0.21 C/W lands at ~90 C.
    thermal::AirCooling air8180(thermal::CoolingTech::DirectEvaporative,
                                35.0, 0.21);
    EXPECT_NEAR(air8180.junctionTemperature(204.5), 90.0, 1.0);
}

TEST(AirCooling, SupportsUpTo700W)
{
    thermal::AirCooling air;
    EXPECT_TRUE(air.supports(700.0));
    EXPECT_FALSE(air.supports(701.0));
}

TEST(AirCooling, ImmersionTechClassRejected)
{
    EXPECT_THROW(thermal::AirCooling(thermal::CoolingTech::Immersion2P),
                 FatalError);
}

TEST(Immersion, TableIiiJunctionTemperatures)
{
    // FC-3284 with BEC on a copper plate: 50 + 0.12 * 204.5 ~= 75 C.
    thermal::TwoPhaseImmersionCooling plate(
        thermal::fc3284(), {BoilingInterface::Coating::CopperPlate});
    EXPECT_NEAR(plate.junctionTemperature(204.5), 75.0, 1.0);

    // FC-3284 with BEC on the IHS: 50 + 0.08 * 204.4 ~= 66-68 C.
    thermal::TwoPhaseImmersionCooling ihs(
        thermal::fc3284(), {BoilingInterface::Coating::DirectIhs});
    EXPECT_NEAR(ihs.junctionTemperature(204.4), 67.0, 1.5);
}

TEST(Immersion, ReferenceIsBoilingPointRegardlessOfLoad)
{
    thermal::TwoPhaseImmersionCooling cooling(thermal::hfe7000());
    EXPECT_DOUBLE_EQ(cooling.referenceTemperature(0.0), 34.0);
    EXPECT_DOUBLE_EQ(cooling.referenceTemperature(1000.0), 34.0);
}

TEST(Immersion, CoolsFarBeyondAir)
{
    thermal::TwoPhaseImmersionCooling cooling(thermal::fc3284());
    EXPECT_TRUE(cooling.supports(2000.0));
    thermal::AirCooling air;
    EXPECT_FALSE(air.supports(2000.0));
}

TEST(Immersion, ImmersionRunsCoolerThanAirAtEveryLoad)
{
    thermal::AirCooling air;
    thermal::TwoPhaseImmersionCooling immersion(thermal::fc3284());
    for (Watts p = 50.0; p <= 400.0; p += 50.0)
        EXPECT_LT(immersion.junctionTemperature(p),
                  air.junctionTemperature(p));
}

TEST(ThermalNode, ConvergesToSteadyState)
{
    thermal::ThermalNode node(0.1, 100.0, 30.0);
    for (int i = 0; i < 1000; ++i)
        node.step(1.0, 200.0, 50.0);
    EXPECT_NEAR(node.temperature(), 70.0, 0.01);
    EXPECT_DOUBLE_EQ(node.steadyState(200.0, 50.0), 70.0);
}

TEST(ThermalNode, ExponentialApproachIsExact)
{
    thermal::ThermalNode node(0.1, 100.0, 30.0);
    // tau = 10 s; after one tau the gap closes by 1 - 1/e.
    node.step(10.0, 200.0, 50.0);
    const double expected = 70.0 + (30.0 - 70.0) * std::exp(-1.0);
    EXPECT_NEAR(node.temperature(), expected, 1e-9);
    EXPECT_DOUBLE_EQ(node.timeConstant(), 10.0);
}

TEST(ThermalNode, LargeStepIsStable)
{
    thermal::ThermalNode node(0.1, 100.0, 30.0);
    node.step(1e6, 200.0, 50.0);
    EXPECT_NEAR(node.temperature(), 70.0, 1e-6);
}

TEST(ThermalNode, TracksExtremes)
{
    thermal::ThermalNode node(0.1, 10.0, 40.0);
    for (int i = 0; i < 100; ++i)
        node.step(1.0, 300.0, 50.0); // Heats toward 80.
    for (int i = 0; i < 100; ++i)
        node.step(1.0, 0.0, 50.0); // Cools toward 50.
    EXPECT_NEAR(node.maxSeen(), 80.0, 0.5);
    EXPECT_GE(node.minSeen() + 1e-9, 40.0);
    node.resetExtremes();
    EXPECT_DOUBLE_EQ(node.minSeen(), node.maxSeen());
}

TEST(Tank, PrototypesMatchPaper)
{
    auto tank1 = thermal::makeSmallTank1();
    EXPECT_EQ(tank1.slots(), 2u);
    EXPECT_EQ(tank1.coolingSystem().fluid().name, "3M HFE-7000");

    auto tank2 = thermal::makeSmallTank2();
    EXPECT_EQ(tank2.coolingSystem().fluid().name, "3M FC-3284");

    auto large = thermal::makeLargeTank();
    EXPECT_EQ(large.slots(), 36u);
    EXPECT_GE(large.condenserCapacity(), 36 * 700.0);
}

TEST(Tank, HeatAccountingAndHeadroom)
{
    auto tank = thermal::makeLargeTank();
    for (std::size_t i = 0; i < tank.slots(); ++i)
        tank.setHeatLoad(i, 700.0);
    EXPECT_DOUBLE_EQ(tank.totalHeat(), 36 * 700.0);
    EXPECT_TRUE(tank.condenserKeepsUp());
    EXPECT_DOUBLE_EQ(tank.headroom(), 0.0);
    tank.setHeatLoad(0, 900.0);
    EXPECT_FALSE(tank.condenserKeepsUp());
}

TEST(Tank, FluidStaysAtBoilingPoint)
{
    auto tank = thermal::makeSmallTank1();
    tank.setHeatLoad(0, 400.0);
    EXPECT_DOUBLE_EQ(tank.fluidTemperature(), 34.0);
}

TEST(Tank, ServiceEventsLoseVapor)
{
    auto tank = thermal::makeSmallTank2();
    EXPECT_DOUBLE_EQ(tank.vaporLossGrams(), 0.0);
    tank.recordServiceEvent();
    tank.recordServiceEvent();
    EXPECT_GT(tank.vaporLossGrams(), 0.0);
}

TEST(Tank, InvalidSlotIsFatal)
{
    auto tank = thermal::makeSmallTank1();
    EXPECT_THROW(tank.setHeatLoad(2, 100.0), FatalError);
    EXPECT_THROW(tank.heatLoad(99), FatalError);
    EXPECT_THROW(tank.setHeatLoad(0, -5.0), FatalError);
}

TEST(JunctionReport, MatchesCoolingSystem)
{
    thermal::AirCooling air;
    const auto report = thermal::junctionReport(air, 204.4);
    EXPECT_DOUBLE_EQ(report.power, 204.4);
    EXPECT_DOUBLE_EQ(report.resistance, 0.22);
    EXPECT_NEAR(report.tjMax, 92.0, 1.0);
}

} // namespace
} // namespace imsim
