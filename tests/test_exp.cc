/**
 * @file
 * Unit tests for the experiment engine: ThreadPool lifecycle and
 * exception propagation, Rng::split stream independence, SweepRunner
 * serial-vs-parallel determinism, RunReport JSON round-trip, and the
 * shared --jobs flag. Registered under the `tsan` ctest label so the
 * pool runs under IMSIM_SANITIZE=thread in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "exp/report.hh"
#include "exp/sweep.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace imsim {
namespace {

TEST(ThreadPool, StartSubmitShutdown)
{
    std::atomic<int> counter{0};
    {
        util::ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 100; ++i)
            futures.push_back(pool.submit([&counter]() { ++counter; }));
        for (auto &future : futures)
            future.get();
        EXPECT_EQ(counter.load(), 100);
    }
    // Destructor joined all workers; tasks submitted before shutdown ran.
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueuedTasksOnShutdown)
{
    std::atomic<int> counter{0};
    {
        util::ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter]() { ++counter; });
        // No explicit wait: the destructor must drain the queue.
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    util::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitReturnsValueAndPropagatesExceptions)
{
    util::ThreadPool pool(2);
    auto ok = pool.submit([]() { return 21 * 2; });
    EXPECT_EQ(ok.get(), 42);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(util::ThreadPool::defaultWorkers(), 1u);
}

TEST(RngSplit, IndependentOfDrawState)
{
    util::Rng fresh(1234);
    util::Rng drained(1234);
    for (int i = 0; i < 1000; ++i)
        drained.uniform();
    // split() depends only on (seed, stream), not on consumed draws.
    util::Rng a = fresh.split(7);
    util::Rng b = drained.split(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngSplit, StreamsDifferFromEachOtherAndFromParent)
{
    util::Rng root(42);
    util::Rng s0 = root.split(0);
    util::Rng s1 = root.split(1);
    util::Rng parent(42);
    int equal01 = 0;
    int equal0p = 0;
    for (int i = 0; i < 64; ++i) {
        const double x0 = s0.uniform();
        const double x1 = s1.uniform();
        const double xp = parent.uniform();
        equal01 += x0 == x1;
        equal0p += x0 == xp;
    }
    EXPECT_EQ(equal01, 0);
    EXPECT_EQ(equal0p, 0);
}

TEST(RngSplit, SameStreamIdReproduces)
{
    util::Rng root(42);
    util::Rng a = root.split(3);
    util::Rng b = root.split(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngSplit, AdjacentSeedsDecorrelate)
{
    util::Rng a = util::Rng(100).split(0);
    util::Rng b = util::Rng(101).split(0);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.uniform() == b.uniform();
    EXPECT_EQ(equal, 0);
}

/** A toy Monte-Carlo body: mean of 100 exponential draws. */
double
expBody(std::size_t i, util::Rng &rng)
{
    double total = 0.0;
    for (int k = 0; k < 100; ++k)
        total += rng.exponential(1.0 + static_cast<double>(i));
    return total / 100.0;
}

TEST(SweepRunner, SerialAndParallelResultsAreIdentical)
{
    const std::size_t n = 40;
    exp::SweepRunner serial({1, 2021});
    exp::SweepRunner parallel({8, 2021});
    const auto a = serial.map<double>(n, expBody);
    const auto b = parallel.map<double>(n, expBody);
    ASSERT_EQ(a.size(), n);
    ASSERT_EQ(b.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "point " << i;
}

TEST(SweepRunner, RunReportIsDeterministicAcrossJobCounts)
{
    const std::vector<exp::Params> grid{
        {{"load", "low"}}, {{"load", "mid"}}, {{"load", "high"}}};
    const auto body = [](const exp::Params &, std::size_t i,
                         util::Rng &rng, exp::MetricsRegistry &metrics) {
        for (int k = 0; k < 200; ++k)
            metrics.sample("lat", rng.lognormalMeanCv(1.0 + i, 1.5));
        metrics.scalar("index", static_cast<double>(i));
    };
    const auto serial =
        exp::SweepRunner({1, 7}).run("toy", grid, body);
    const auto parallel =
        exp::SweepRunner({8, 7}).run("toy", grid, body);
    EXPECT_EQ(serial.toJson(), parallel.toJson());
}

TEST(SweepRunner, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(64);
    exp::SweepRunner runner({4, 1});
    runner.parallelFor(hits.size(),
                       [&hits](std::size_t i, util::Rng &) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(SweepRunner, ExceptionsPropagateToCaller)
{
    exp::SweepRunner runner({4, 1});
    EXPECT_THROW(
        runner.parallelFor(8,
                           [](std::size_t i, util::Rng &) {
                               if (i == 5)
                                   util::fatal("boom");
                           }),
        FatalError);
}

TEST(SweepRunner, ParamGridIsSecondKeyMajor)
{
    const auto grid = exp::paramGrid("a", {"1", "2"}, "b", {"x", "y"});
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0], (exp::Params{{"a", "1"}, {"b", "x"}}));
    EXPECT_EQ(grid[1], (exp::Params{{"a", "1"}, {"b", "y"}}));
    EXPECT_EQ(grid[3], (exp::Params{{"a", "2"}, {"b", "y"}}));
}

TEST(MetricsRegistry, SnapshotFlattensDistributions)
{
    exp::MetricsRegistry registry;
    registry.scalar("power_w", 130.0);
    for (int i = 1; i <= 100; ++i)
        registry.sample("lat", static_cast<double>(i));
    const exp::MetricSet snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("power_w"), 130.0);
    EXPECT_DOUBLE_EQ(snap.get("lat.mean"), 50.5);
    EXPECT_NEAR(snap.get("lat.p95"), 95.0, 1.0);
    EXPECT_NEAR(snap.get("lat.p99"), 99.0, 1.0);
    EXPECT_THROW(snap.get("missing"), FatalError);
}

TEST(RunReport, JsonRoundTrip)
{
    exp::RunReport report("fig12 \"quoted\"\nname");
    exp::RunRecord r1;
    r1.params = {{"pcores", "8"}, {"config", "B2"}};
    r1.metrics.set("p95_ms", 12.339999999999998);
    r1.metrics.set("power_w", 130.0);
    exp::RunRecord r2;
    r2.params = {{"pcores", "16"}, {"config", "OC3"}};
    r2.metrics.set("p95_ms", 7.25);
    report.add(r1);
    report.add(r2);

    const std::string json = report.toJson();
    const exp::RunReport parsed = exp::RunReport::fromJson(json);
    EXPECT_EQ(parsed.name(), report.name());
    ASSERT_EQ(parsed.records().size(), 2u);
    EXPECT_EQ(parsed.records()[0].params, r1.params);
    EXPECT_DOUBLE_EQ(parsed.records()[0].metrics.get("p95_ms"),
                     12.339999999999998);
    EXPECT_DOUBLE_EQ(parsed.records()[0].metrics.get("power_w"), 130.0);
    EXPECT_EQ(parsed.records()[1].params, r2.params);
    // Emit -> parse -> emit is a fixed point.
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(RunReport, EmptyAndNonFiniteRoundTrip)
{
    exp::RunReport empty("nothing");
    EXPECT_EQ(exp::RunReport::fromJson(empty.toJson()).records().size(),
              0u);

    exp::RunReport report("inf");
    exp::RunRecord record;
    record.metrics.set("bad", std::nan(""));
    report.add(record);
    const auto parsed = exp::RunReport::fromJson(report.toJson());
    EXPECT_TRUE(std::isnan(parsed.records()[0].metrics.get("bad")));
}

TEST(RunReport, FromJsonRejectsGarbage)
{
    EXPECT_THROW(exp::RunReport::fromJson("not json"), FatalError);
    EXPECT_THROW(exp::RunReport::fromJson("{\"points\": []}"), FatalError);
}

TEST(RunReport, TableHasParamAndMetricColumns)
{
    exp::RunReport report("t");
    exp::RunRecord record;
    record.params = {{"config", "B2"}};
    record.metrics.set("p95_ms", 12.0);
    report.add(record);
    std::ostringstream out;
    report.toTable().printCsv(out);
    EXPECT_NE(out.str().find("config"), std::string::npos);
    EXPECT_NE(out.str().find("p95_ms"), std::string::npos);
    EXPECT_NE(out.str().find("B2"), std::string::npos);
}

TEST(RunReport, WriteJsonFileRoundTrips)
{
    exp::RunReport report("file");
    exp::RunRecord record;
    record.params = {{"k", "v"}};
    record.metrics.set("m", 1.5);
    report.add(record);
    const std::string path =
        testing::TempDir() + "imsim_test_report.json";
    report.writeJsonFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = exp::RunReport::fromJson(buffer.str());
    EXPECT_EQ(parsed.records().size(), 1u);
    EXPECT_DOUBLE_EQ(parsed.records()[0].metrics.get("m"), 1.5);
    std::remove(path.c_str());
}

TEST(SweepRunner, FirstFailureIsIdenticalAcrossJobCounts)
{
    // Two points fail; the surfaced error must name the lowest index
    // with the same message whether the sweep ran serially or pooled.
    const auto run = [](std::size_t jobs) -> std::string {
        exp::SweepRunner runner({jobs, 1});
        try {
            runner.parallelFor(8, [](std::size_t i, util::Rng &) {
                if (i == 3 || i == 6)
                    throw std::runtime_error("boom at " +
                                             std::to_string(i));
            });
        } catch (const exp::SweepPointError &e) {
            return std::to_string(e.index()) + "|" + e.what();
        }
        return "no error";
    };
    const std::string serial = run(1);
    EXPECT_NE(serial, "no error");
    EXPECT_NE(serial.find("point 3 failed: boom at 3"),
              std::string::npos);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(8));
}

TEST(SweepRunner, ResultPayloadIdenticalWithProgressAttached)
{
    // The monitor adds a "timing" section but must never leak into the
    // deterministic payload (name + points).
    const auto payload = [](std::size_t jobs) {
        exp::ProgressMonitor monitor("payload_test");
        exp::SweepRunner runner({jobs, 7, &monitor});
        const exp::RunReport report = runner.run(
            "progress_payload",
            exp::paramGrid("a", {"1", "2"}, "b", {"x", "y"}),
            [](const exp::Params &, std::size_t i, util::Rng &rng,
               exp::MetricsRegistry &metrics) {
                metrics.scalar("value",
                               rng.uniform() + static_cast<double>(i));
            });
        EXPECT_TRUE(report.hasTiming());
        EXPECT_EQ(report.timing().points.size(), 4u);
        exp::RunReport clean(report.name());
        for (const auto &record : report.records())
            clean.add(record);
        return clean.toJson();
    };
    EXPECT_EQ(payload(1), payload(4));
}

TEST(ProgressMonitor, TimingHeartbeatAndStatus)
{
    const std::string hb_path = "progress_test_heartbeat.jsonl";
    std::ostringstream status;
    exp::ProgressMonitor::Options opts;
    opts.status = &status;
    opts.statusIsTty = false;
    opts.minStatusIntervalS = 0.0;
    opts.heartbeatPath = hb_path;
    exp::ProgressMonitor monitor("unit_sweep", opts);
    monitor.begin(2);
    for (std::size_t i = 0; i < 2; ++i) {
        monitor.pointQueued(i);
        monitor.pointStarted(i);
        monitor.pointFinished(i);
    }
    monitor.end();

    const exp::RunTiming timing = monitor.runTiming();
    ASSERT_EQ(timing.points.size(), 2u);
    EXPECT_EQ(timing.points[0].index, 0u);
    EXPECT_EQ(timing.points[1].index, 1u);
    EXPECT_GE(timing.points[0].wallMs, 0.0);
    EXPECT_GE(timing.totalWallMs, 0.0);
    EXPECT_NE(status.str().find("unit_sweep"), std::string::npos);
    EXPECT_NE(status.str().find("2/2"), std::string::npos);

    std::ifstream in(hb_path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    in.close();
    std::remove(hb_path.c_str());
    ASSERT_EQ(lines.size(), 4u); // begin, 2 points, end.
    EXPECT_NE(lines.front().find("\"event\": \"begin\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"event\": \"point\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"event\": \"end\""),
              std::string::npos);
}

TEST(RunReport, MetaAndTimingRoundTrip)
{
    exp::RunReport report("timed");
    exp::RunRecord record;
    record.metrics.set("x", 1.0);
    report.add(record);
    report.setMeta({{"git_sha", "abcdef012345"}, {"seed", "42"}});
    exp::RunTiming timing;
    timing.totalWallMs = 12.5;
    exp::PointTiming pt;
    pt.index = 0;
    pt.queueMs = 0.25;
    pt.wallMs = 10.5;
    pt.worker = 2;
    timing.points.push_back(pt);
    report.setTiming(timing);

    const std::string json = report.toJson();
    const exp::RunReport parsed = exp::RunReport::fromJson(json);
    ASSERT_TRUE(parsed.hasMeta());
    EXPECT_EQ(parsed.meta(), report.meta());
    ASSERT_TRUE(parsed.hasTiming());
    EXPECT_DOUBLE_EQ(parsed.timing().totalWallMs, 12.5);
    ASSERT_EQ(parsed.timing().points.size(), 1u);
    EXPECT_EQ(parsed.timing().points[0].index, 0u);
    EXPECT_DOUBLE_EQ(parsed.timing().points[0].queueMs, 0.25);
    EXPECT_DOUBLE_EQ(parsed.timing().points[0].wallMs, 10.5);
    EXPECT_EQ(parsed.timing().points[0].worker, 2);
    // Emit -> parse -> emit stays a fixed point with the new sections.
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(RunReport, MetaAndTimingAreAbsentUntilSet)
{
    exp::RunReport report("plain");
    EXPECT_FALSE(report.hasMeta());
    EXPECT_FALSE(report.hasTiming());
    const std::string json = report.toJson();
    EXPECT_EQ(json.find("\"meta\""), std::string::npos);
    EXPECT_EQ(json.find("\"timing\""), std::string::npos);
}

TEST(Cli, JobsFlagDefaultsToHardwareConcurrency)
{
    const char *argv_default[] = {"bench"};
    const util::Cli plain(1, argv_default);
    EXPECT_EQ(plain.jobs(), util::ThreadPool::defaultWorkers());

    const char *argv_jobs[] = {"bench", "--jobs", "3"};
    const util::Cli with_jobs(3, argv_jobs);
    EXPECT_EQ(with_jobs.jobs(), 3u);

    const char *argv_bad[] = {"bench", "--jobs", "0"};
    const util::Cli bad(3, argv_bad);
    EXPECT_THROW(bad.jobs(), FatalError);
}

} // namespace
} // namespace imsim
